package service

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/search"
	"repro/internal/sim"
	"repro/internal/sim/trace"
	"repro/internal/sweep"
)

// Kind classifies a job.
type Kind string

// Job kinds.
const (
	// KindEstimate measures one (protocol, adversary, γ) utility.
	KindEstimate Kind = "estimate"
	// KindSup searches the sup-utility over a strategy space.
	KindSup Kind = "sup"
	// KindSearch races a strategy space to its certified best response.
	KindSearch Kind = "search"
	// KindSweep runs a bound-certifying parameter sweep.
	KindSweep Kind = "sweep"
	// KindExperiment runs paper-reproduction experiments (E01..E12).
	KindExperiment Kind = "experiment"
)

// Params is a validated, typed job parameter set. Implementations are
// plain JSON-serializable structs so the daemon can decode them
// directly from request bodies.
type Params interface {
	// Kind names the job type the parameters describe.
	Kind() Kind
	// Validate resolves every name and range eagerly so Submit rejects
	// malformed requests before they reach a worker.
	Validate() error
	// paramString is the canonical parameter encoding hashed (together
	// with the seed) into the cache key. It must cover everything that
	// can change the result and nothing that cannot: scheduling-only
	// knobs (parallelism, batch size, compiled plans) are excluded by
	// the estimator's determinism contract. Empty means "not cacheable".
	paramString() string
	// seed is the seed hashed into the cache key next to paramString.
	seed() int64
}

// gammaString renders a payoff vector canonically (the sweep's format).
func gammaString(g core.Payoff) string {
	return fmt.Sprintf("%g,%g,%g,%g", g.G00, g.G01, g.G10, g.G11)
}

// resolvePayoff turns an optional request vector into a core.Payoff,
// defaulting per protocol family.
func resolvePayoff(g *[4]float64, protoName string) core.Payoff {
	if g == nil {
		return DefaultPayoff(protoName)
	}
	return core.Payoff{G00: g[0], G01: g[1], G10: g[2], G11: g[3]}
}

// EstimateParams describes one utility estimation: protocol and
// adversary by registry name, optional payoff override, run count and
// seed. The zero Gamma (nil) selects the protocol family's default
// vector.
type EstimateParams struct {
	Proto string      `json:"proto"`
	Adv   string      `json:"adv"`
	Gamma *[4]float64 `json:"gamma,omitempty"`
	Runs  int         `json:"runs"`
	Seed  int64       `json:"seed"`
}

// Kind implements Params.
func (p EstimateParams) Kind() Kind { return KindEstimate }

// Validate implements Params.
func (p EstimateParams) Validate() error {
	if p.Runs <= 0 {
		return fmt.Errorf("service: estimate: %w", core.ErrNoRuns)
	}
	proto, _, err := BuildProtocol(p.Proto)
	if err != nil {
		return fmt.Errorf("service: estimate: %w", err)
	}
	if _, err := BuildAdversary(p.Adv, proto.NumParties()); err != nil {
		return fmt.Errorf("service: estimate: %w", err)
	}
	return nil
}

func (p EstimateParams) paramString() string {
	return fmt.Sprintf("estimate|proto=%s|adv=%s|g=%s|runs=%d",
		p.Proto, p.Adv, gammaString(resolvePayoff(p.Gamma, p.Proto)), p.Runs)
}

func (p EstimateParams) seed() int64 { return p.Seed }

// SupParams describes a sup-utility search over a named strategy space.
type SupParams struct {
	Proto string      `json:"proto"`
	Advs  []string    `json:"advs"`
	Gamma *[4]float64 `json:"gamma,omitempty"`
	Runs  int         `json:"runs"`
	Seed  int64       `json:"seed"`
}

// Kind implements Params.
func (p SupParams) Kind() Kind { return KindSup }

// Validate implements Params.
func (p SupParams) Validate() error {
	if p.Runs <= 0 {
		return fmt.Errorf("service: sup: %w", core.ErrNoRuns)
	}
	if len(p.Advs) == 0 {
		return errors.New("service: sup: empty strategy space")
	}
	proto, _, err := BuildProtocol(p.Proto)
	if err != nil {
		return fmt.Errorf("service: sup: %w", err)
	}
	for _, a := range p.Advs {
		if _, err := BuildAdversary(a, proto.NumParties()); err != nil {
			return fmt.Errorf("service: sup: %w", err)
		}
	}
	return nil
}

func (p SupParams) paramString() string {
	return fmt.Sprintf("sup|proto=%s|advs=%s|g=%s|runs=%d",
		p.Proto, strings.Join(p.Advs, "+"), gammaString(resolvePayoff(p.Gamma, p.Proto)), p.Runs)
}

func (p SupParams) seed() int64 { return p.Seed }

// SweepParams wraps a sweep.Spec as a job. The spec's scheduling knobs
// (Parallelism, BatchSize, NoCompiledPlans) are excluded from the cache
// key — the sweep documents that they never change any record.
type SweepParams struct {
	Spec sweep.Spec `json:"spec"`
}

// Kind implements Params.
func (p SweepParams) Kind() Kind { return KindSweep }

// Validate implements Params.
func (p SweepParams) Validate() error {
	if _, err := sweep.Plan(p.Spec); err != nil {
		return fmt.Errorf("service: sweep: %w", err)
	}
	return nil
}

func (p SweepParams) paramString() string {
	s := p.Spec
	gs := make([]string, len(s.Gammas))
	for i, g := range s.Gammas {
		gs[i] = gammaString(g)
	}
	key := fmt.Sprintf("sweep|fam=%v|g=%v|n=%v|t=%v|p=%v|cost=%v|abort=%t|sup=%d|supsearch=%t|runs=%d|hw=%g|delta=%g|min=%d|max=%d|slack=%g",
		s.Families, gs, s.Ns, s.Ts, s.Ps, s.Costs, s.AbortSweep, s.SupRuns, s.SupSearch,
		s.Runs, s.TargetHW, s.Delta, s.MinRuns, s.MaxRuns, s.Slack)
	// The variance-reduction options change record bytes, so they join
	// the key — but only when set, preserving every pre-existing cache
	// key byte for byte.
	if s.PairedSeeds || s.ControlVariates {
		key += fmt.Sprintf("|paired=%t|cv=%t", s.PairedSeeds, s.ControlVariates)
	}
	return key
}

func (p SweepParams) seed() int64 { return p.Spec.Seed }

// ExperimentParams runs a subset of the paper-reproduction experiments
// under one experiments.Config. Experiment jobs are never cached: their
// results carry per-run metrics that the fairness command prints, and a
// single CLI invocation never repeats an experiment.
type ExperimentParams struct {
	// IDs selects experiments ("E01", …); empty selects all.
	IDs []string `json:"ids,omitempty"`
	// Config is the experiment configuration. Its Metrics and Trace
	// fields are execution-local and may be set by the caller.
	Config experiments.Config `json:"-"`
}

// Kind implements Params.
func (p ExperimentParams) Kind() Kind { return KindExperiment }

// Validate implements Params.
func (p ExperimentParams) Validate() error {
	if p.Config.Runs <= 0 || p.Config.SupRuns <= 0 {
		return fmt.Errorf("service: experiment: %w", core.ErrNoRuns)
	}
	known := map[string]bool{}
	for _, e := range experiments.All() {
		known[e.ID] = true
	}
	for _, id := range p.IDs {
		if !known[id] {
			return fmt.Errorf("service: experiment: unknown experiment %q", id)
		}
	}
	return nil
}

// paramString is empty: experiment jobs bypass the cache (see above).
func (p ExperimentParams) paramString() string { return "" }

func (p ExperimentParams) seed() int64 { return p.Config.Seed }

// Result is a completed job's immutable outcome. Exactly one of the
// kind-specific fields is set. Results served from the cache alias the
// originals — callers must treat every field as read-only.
type Result struct {
	// Kind echoes the job kind.
	Kind Kind
	// Estimate is set for KindEstimate jobs.
	Estimate *core.UtilityReport
	// Sup is set for KindSup jobs.
	Sup *core.SupReport
	// Search is set for KindSearch jobs.
	Search *search.Report
	// Sweep is set for KindSweep jobs. A sweep that breached a bound
	// still produces a summary; Breached records that outcome.
	Sweep    *sweep.Summary
	Breached bool
	// Experiments is set for KindExperiment jobs.
	Experiments []experiments.Result
	// Metrics counts the engine work this job performed. Zero for cache
	// hits: no simulation ran. (The reports' own Metrics fields keep the
	// original values — they describe the estimation that produced the
	// numbers and are part of the cached bytes.)
	Metrics sim.Metrics
	// CacheHit reports whether the result was served from the cache.
	CacheHit bool
	// Key is the cache key, or 0 for uncacheable jobs.
	Key uint64
}

// JobOption attaches execution-local configuration to one job.
// Options never change a job's result — only its side effects — but a
// job carrying any side-effecting option skips the cache read so those
// side effects happen.
type JobOption func(*jobOptions)

type jobOptions struct {
	parallelism int
	traceSink   *trace.Sink
	checkpoint  string
	progress    sweep.Progress
	traceLabel  string
	ctx         context.Context
}

// local reports whether the job carries execution-local side effects
// and therefore must actually execute.
func (o *jobOptions) local() bool {
	return o.traceSink != nil || o.checkpoint != "" || o.progress != nil
}

// WithJobContext attaches a cancellation context to one job. A job
// whose context is canceled while still queued never executes; a sweep
// job additionally stops between cells (sweep.RunContext). Either way
// the job fails with the context's error and the result is never
// cached. The context is a scheduling concern only — it does not make
// the job execution-local, so cache reads and single-flight dedup
// still apply. A follower deduped onto a leader whose context was
// canceled sees the leader's cancellation error and can simply
// resubmit.
func WithJobContext(ctx context.Context) JobOption {
	return func(o *jobOptions) { o.ctx = ctx }
}

// WithJobParallelism overrides the pool's default estimator
// parallelism for one job. Scheduling only: results are identical for
// every setting.
func WithJobParallelism(n int) JobOption {
	return func(o *jobOptions) { o.parallelism = n }
}

// WithTrace attaches a JSONL transcript sink: every simulated run of an
// estimate or sup job is recorded to it. The job skips the cache read
// (the transcript is a side effect of execution).
func WithTrace(sink *trace.Sink) JobOption {
	return func(o *jobOptions) { o.traceSink = sink }
}

// WithTraceLabel sets the strategy label recorded in estimate-job
// transcripts (fairsim labels runs with the adversary name).
func WithTraceLabel(label string) JobOption {
	return func(o *jobOptions) { o.traceLabel = label }
}

// WithCheckpoint streams a sweep or search job's records to a JSONL
// checkpoint, resuming if the file exists. Jobs with a checkpoint skip
// the cache read.
func WithCheckpoint(path string) JobOption {
	return func(o *jobOptions) { o.checkpoint = path }
}

// WithProgress attaches a per-record progress callback to a sweep job.
// The callback runs on the worker goroutine executing the job.
func WithProgress(fn sweep.Progress) JobOption {
	return func(o *jobOptions) { o.progress = fn }
}
