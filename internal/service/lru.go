package service

import "container/list"

// lru is a fixed-capacity least-recently-used cache from uint64 keys to
// immutable cached results. Not safe for concurrent use; the pool holds
// its own lock.
type lru struct {
	cap   int
	order *list.List // front = most recently used
	items map[uint64]*list.Element
}

type lruEntry struct {
	key uint64
	val *Result
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, order: list.New(), items: make(map[uint64]*list.Element)}
}

// get returns the cached result and marks it most recently used.
func (c *lru) get(key uint64) (*Result, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts (or refreshes) a result, evicting the least recently used
// entry when over capacity.
func (c *lru) put(key uint64, val *Result) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// len reports the entry count.
func (c *lru) len() int { return c.order.Len() }
