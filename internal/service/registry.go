// Package service is the shared request path behind the fairness
// commands and the fairnessd daemon: a Job abstraction over the
// estimation engine (estimate / sup / sweep / experiment jobs with
// validated, typed parameters), a bounded worker pool that executes
// them, per-job engine-metrics aggregation, and an LRU result cache
// keyed by the sweep's FNV-1a cell hash so repeated (params, seed)
// requests are free.
//
// The cache is sound because of the estimator's determinism contract:
// an estimate is a pure function of (params, seed) — parallelism, batch
// size, observers, and compiled plans change scheduling only, never
// results — so two submissions with equal canonical parameter strings
// and seeds would compute bit-identical reports. Serving the second
// from cache returns the same bits without the work. Scheduling-only
// knobs are accordingly excluded from cache keys, and jobs that carry
// execution-local options (a trace sink, a checkpoint path, a progress
// callback) skip the cache read so their side effects still happen.
package service

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/protocols/contract"
	"repro/internal/protocols/gordonkatz"
	"repro/internal/protocols/multiparty"
	"repro/internal/protocols/twoparty"
	"repro/internal/sim"
)

// BuildProtocol resolves a protocol name ("2sfe-opt", "nsfe-gmw12:4",
// "gk-polydomain:8", …) to an instance plus its canonical input
// sampler — the distribution the corresponding experiment or example
// draws from. This is the registry the fairsim command and the
// fairnessd daemon share.
//
// Protocols: pi1, pi2, 2sfe-opt, 2sfe-fixed2, 2sfe-oneround,
// nsfe-opt:N, nsfe-gmw12:N, nsfe-lemma18:N, nsfe-hybrid:N,
// gk-polydomain:P, gk-polyrange:P, gk-pitilde.
func BuildProtocol(name string) (sim.Protocol, core.InputSampler, error) {
	base, arg, _ := strings.Cut(name, ":")
	n := 0
	if arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil {
			return nil, nil, fmt.Errorf("bad protocol argument %q: %w", arg, err)
		}
		n = v
	}
	uniformN := func(parties, max int) core.InputSampler {
		return func(r *rand.Rand) []sim.Value {
			in := make([]sim.Value, parties)
			for i := range in {
				in[i] = uint64(r.Intn(max))
			}
			return in
		}
	}
	switch base {
	case "pi1":
		return contract.Pi1{}, uniformN(2, 1<<16), nil
	case "pi2":
		return contract.Pi2{}, uniformN(2, 1<<16), nil
	case "2sfe-opt":
		return twoparty.New(twoparty.Swap()), uniformN(2, 1<<20), nil
	case "2sfe-fixed2":
		return twoparty.NewFixedOrder(twoparty.Swap(), 2), uniformN(2, 1<<20), nil
	case "2sfe-oneround":
		return twoparty.NewOneRound(twoparty.Swap()), uniformN(2, 1<<20), nil
	case "nsfe-opt", "nsfe-gmw12", "nsfe-lemma18", "nsfe-hybrid":
		if n < 2 {
			n = 4
		}
		fn, err := multiparty.Concat(n, 8)
		if err != nil {
			return nil, nil, err
		}
		var p sim.Protocol
		switch base {
		case "nsfe-opt":
			p = multiparty.NewOptN(fn)
		case "nsfe-gmw12":
			p = multiparty.NewGMWHalf(fn)
		case "nsfe-lemma18":
			p = multiparty.NewLemma18(fn)
		default:
			p = multiparty.NewHybrid(fn)
		}
		return p, uniformN(n, 256), nil
	case "gk-polydomain", "gk-polyrange":
		if arg == "" {
			n = 4
		}
		if n < 1 {
			return nil, nil, fmt.Errorf("gk protocols need p ≥ 1, got %d", n)
		}
		var (
			p   gordonkatz.Protocol
			err error
		)
		if base == "gk-polydomain" {
			p, err = gordonkatz.NewPolyDomain(gordonkatz.AND(), n)
		} else {
			p, err = gordonkatz.NewPolyRange(gordonkatz.AND(), n)
		}
		if err != nil {
			return nil, nil, err
		}
		return p, core.FixedInputs(uint64(1), uint64(1)), nil
	case "gk-pitilde":
		p, err := gordonkatz.NewPitilde()
		if err != nil {
			return nil, nil, err
		}
		return p, uniformN(2, 2), nil
	default:
		return nil, nil, fmt.Errorf("unknown protocol %q", name)
	}
}

// BuildAdversary resolves an adversary name against a protocol with n
// parties.
//
// Adversaries: passive, static:IDS, lock-abort:IDS, abort:R:IDS,
// setup-abort:IDS, agen, allbut-mixer, leak-extractor
// (IDS is a +-separated party list, e.g. lock-abort:1+3).
func BuildAdversary(name string, n int) (sim.Adversary, error) {
	parts := strings.Split(name, ":")
	parseIDs := func(s string) ([]sim.PartyID, error) {
		var ids []sim.PartyID
		for _, tok := range strings.Split(s, "+") {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("bad party id %q: %w", tok, err)
			}
			ids = append(ids, sim.PartyID(v))
		}
		return ids, nil
	}
	switch parts[0] {
	case "passive":
		return sim.Passive{}, nil
	case "agen":
		return adversary.NewAgen(), nil
	case "allbut-mixer":
		return adversary.NewAllButMixer(n), nil
	case "leak-extractor":
		return gordonkatz.NewLeakExtractor(), nil
	case "static", "lock-abort", "setup-abort":
		if len(parts) != 2 {
			return nil, fmt.Errorf("%s needs a party list, e.g. %s:1+2", parts[0], parts[0])
		}
		ids, err := parseIDs(parts[1])
		if err != nil {
			return nil, err
		}
		switch parts[0] {
		case "static":
			return adversary.NewStatic(ids...), nil
		case "lock-abort":
			return adversary.NewLockAbort(ids...), nil
		default:
			return adversary.NewSetupAbort(ids...), nil
		}
	case "abort":
		if len(parts) != 3 {
			return nil, fmt.Errorf("abort needs round and party list, e.g. abort:2:1")
		}
		round, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad round %q: %w", parts[1], err)
		}
		ids, err := parseIDs(parts[2])
		if err != nil {
			return nil, err
		}
		return adversary.NewAbortAt(round, ids...), nil
	default:
		return nil, fmt.Errorf("unknown adversary %q", name)
	}
}

// DefaultPayoff is the payoff vector a protocol's experiments use when
// the request does not carry one: the Gordon–Katz vector for the gk
// family, the standard Γ+fair vector otherwise.
func DefaultPayoff(protoName string) core.Payoff {
	if strings.HasPrefix(protoName, "gk-") {
		return core.GordonKatzPayoff()
	}
	return core.StandardPayoff()
}
