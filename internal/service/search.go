package service

import (
	"fmt"
	"strings"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/protocols/gordonkatz"
	"repro/internal/search"
	"repro/internal/sim"
)

// Strategy-space names BuildSpace resolves.
const (
	// SpaceRaw is the raw structured space (corrupted set × abort round ×
	// input substitution) the search engine branch-and-bounds over.
	SpaceRaw = "raw"
	// SpaceClassic is the curated slice space of package adversary
	// (TwoPartySpace / MultiPartySpace), adapted through core.SliceSpace.
	SpaceClassic = "classic"
)

// rawSubstitutions is the default substitution axis of the raw space:
// the two boolean-ish corner inputs, enough to expose substitution
// attacks on every registry protocol without blowing up the arm count.
var rawSubstitutions = []sim.Value{uint64(0), uint64(1)}

// BuildSpace resolves a strategy-space name ("raw", "classic", or ""
// for the default raw space) against a registry protocol. The raw space
// is two-party only; classic follows the protocol's party count. For
// the Gordon–Katz protocols the raw space additionally carries the
// exact first-hit round-guessing arm.
func BuildSpace(name, protoName string) (core.StrategySpace, error) {
	proto, _, err := BuildProtocol(protoName)
	if err != nil {
		return nil, err
	}
	switch name {
	case "", SpaceRaw:
		if n := proto.NumParties(); n != 2 {
			return nil, fmt.Errorf("space %q is two-party only; protocol %s has %d parties (use %q)",
				SpaceRaw, protoName, n, SpaceClassic)
		}
		opts := []adversary.RawOption{adversary.WithSubstitutions(rawSubstitutions...)}
		if strings.HasPrefix(protoName, "gk-poly") {
			opts = append(opts, adversary.WithFirstHit(func(p sim.PartyID) sim.Adversary {
				return gordonkatz.NewFirstHit(p)
			}))
		}
		return adversary.NewRawTwoParty(proto.NumRounds(), opts...), nil
	case SpaceClassic:
		if proto.NumParties() == 2 {
			return core.SliceSpace(adversary.TwoPartySpace(proto.NumRounds())), nil
		}
		return core.SliceSpace(adversary.MultiPartySpace(proto.NumParties(), proto.NumRounds())), nil
	default:
		return nil, fmt.Errorf("unknown strategy space %q (want %q or %q)", name, SpaceRaw, SpaceClassic)
	}
}

// SearchParams describes one best-response search: protocol and
// strategy space by registry name, optional payoff override, and the
// racing engine's statistical knobs. Zero knobs select the engine
// defaults (search.Options); scheduling-only settings (parallelism,
// checkpoint path) arrive as job options, never here — the cache key
// must cover exactly the knobs that can change the result.
type SearchParams struct {
	Proto string `json:"proto"`
	// Space names the strategy space ("raw" default, "classic").
	Space string      `json:"space,omitempty"`
	Gamma *[4]float64 `json:"gamma,omitempty"`
	// Wave, Growth, RaceRuns, FinalRuns, Delta, MaxArms, Exhaustive
	// mirror search.Options (zero = default).
	Wave       int     `json:"wave,omitempty"`
	Growth     int     `json:"growth,omitempty"`
	RaceRuns   int     `json:"race_runs,omitempty"`
	FinalRuns  int     `json:"final_runs,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	MaxArms    int     `json:"max_arms,omitempty"`
	Exhaustive bool    `json:"exhaustive,omitempty"`
	// PairedSeeds enables common-random-numbers racing
	// (search.Options.PairedSeeds). Changes report bytes, so it joins
	// the cache key via search.ParamString — but only when set.
	PairedSeeds bool  `json:"paired_seeds,omitempty"`
	Seed        int64 `json:"seed"`
}

// Kind implements Params.
func (p SearchParams) Kind() Kind { return KindSearch }

// Validate implements Params.
func (p SearchParams) Validate() error {
	if _, err := BuildSpace(p.Space, p.Proto); err != nil {
		return fmt.Errorf("service: search: %w", err)
	}
	if p.Wave < 0 || p.Growth < 0 || p.RaceRuns < 0 || p.FinalRuns < 0 || p.MaxArms < 0 {
		return fmt.Errorf("service: search: negative racing knob")
	}
	if p.Delta < 0 || p.Delta >= 1 {
		return fmt.Errorf("service: search: delta %g outside [0, 1)", p.Delta)
	}
	return nil
}

// Options maps the statistical knobs onto search.Options (zero fields
// fall through to the engine defaults).
func (p SearchParams) Options() search.Options {
	return search.Options{
		Wave: p.Wave, Growth: p.Growth,
		RaceRuns: p.RaceRuns, FinalRuns: p.FinalRuns,
		Delta: p.Delta, MaxArms: p.MaxArms, Exhaustive: p.Exhaustive,
		PairedSeeds: p.PairedSeeds,
	}
}

// paramString delegates to search.ParamString — the engine's canonical
// encoding, which excludes every scheduling knob by the search's
// determinism contract. Unresolvable names mean "not cacheable"; Submit
// has already rejected them via Validate.
func (p SearchParams) paramString() string {
	space, err := BuildSpace(p.Space, p.Proto)
	if err != nil {
		return ""
	}
	return search.ParamString(p.Proto, space.Describe(), resolvePayoff(p.Gamma, p.Proto), p.Options())
}

func (p SearchParams) seed() int64 { return p.Seed }
