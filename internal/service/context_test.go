package service

import (
	"context"
	"errors"
	"testing"

	"repro/internal/sweep"
)

// TestJobContextCanceledBeforeRun pins the queue-side cancellation
// path: a job whose context is already canceled when a worker picks it
// up fails with the context error, runs nothing, and is never cached.
func TestJobContextCanceledBeforeRun(t *testing.T) {
	p := newTestPool(t, 1)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	params := EstimateParams{Proto: "2sfe-opt", Adv: "lock-abort:1", Runs: 100, Seed: 5}
	j, err := p.Submit(params, WithJobContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait: err = %v, want context.Canceled", err)
	}
	if got := p.Metrics(); got.Runs != 0 {
		t.Errorf("canceled job ran %d simulations, want 0", got.Runs)
	}

	// The failure must not poison the cache: a fresh submission without
	// the canceled context executes and succeeds.
	j2, err := p.Submit(params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j2.Wait()
	if err != nil {
		t.Fatalf("resubmit after cancel: %v", err)
	}
	if res.CacheHit {
		t.Error("resubmit was served from cache; canceled jobs must not be cached")
	}
}

// TestSweepJobContextCancelMidRun pins the in-flight cancellation
// path: a sweep job's context cancels between cells, the job fails
// with the context error, and the partial result is not cached.
func TestSweepJobContextCancelMidRun(t *testing.T) {
	p := newTestPool(t, 1)

	// Widen the tiny spec so several cells remain after the cancel point.
	spec := tinySweepSpec()
	spec.AbortSweep = true
	ctx, cancel := context.WithCancel(context.Background())
	j, err := p.Submit(SweepParams{Spec: spec},
		WithJobContext(ctx),
		WithProgress(func(done, total int, rec sweep.Record, resumed bool) {
			if done == 1 {
				cancel()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait: err = %v, want context.Canceled", err)
	}

	// A clean resubmission completes in full.
	j2, err := p.Submit(SweepParams{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := j2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("resubmit was served from cache; canceled sweep must not be cached")
	}
	if res.Sweep == nil || len(res.Sweep.Records) == 0 {
		t.Fatal("resubmitted sweep produced no records")
	}
}
