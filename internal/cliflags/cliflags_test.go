package cliflags

import (
	"flag"
	"testing"
	"time"
)

func TestRegisterEstimationDefaultsAndGiven(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	est := RegisterEstimation(fs, EstimationSpec{Runs: 1000, Seed: 5, Sup: true, SupRuns: 40, Parallel: true, Trace: true})
	if err := fs.Parse([]string{"-seed", "0", "-trace", "out.jsonl"}); err != nil {
		t.Fatal(err)
	}
	if est.Runs != 1000 || est.Sup != 40 || est.Seed != 0 || est.Parallel != 0 || est.Trace != "out.jsonl" {
		t.Fatalf("parsed %+v", est)
	}
	// The fs.Visit idiom: an explicit zero is "given", a default is not.
	if !est.Given("seed") {
		t.Error("explicit -seed 0 not reported as given")
	}
	if est.Given("runs") || est.Given("sup") || est.Given("parallel") {
		t.Error("defaulted flags reported as given")
	}
}

func TestRegisterEstimationSelectsFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	RegisterEstimation(fs, EstimationSpec{})
	for name, want := range map[string]bool{"runs": true, "seed": true, "sup": false, "parallel": false, "trace": false} {
		if got := fs.Lookup(name) != nil; got != want {
			t.Errorf("flag -%s registered = %v, want %v", name, got, want)
		}
	}
}

func TestChaos(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := RegisterChaos(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Enabled() {
		t.Error("default chaos profile reports enabled")
	}
	if inj, err := c.Injector(); err != nil || inj != nil {
		t.Errorf("disabled profile: injector=%v err=%v, want nil, nil", inj, err)
	}
	if c.Seed != 1 || c.MaxDelay != 5*time.Millisecond || c.KillRound != 1 || c.Timeout != 2*time.Second {
		t.Errorf("defaults %+v", c)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	c = RegisterChaos(fs)
	if err := fs.Parse([]string{"-drop", "0.1", "-chaos-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	if !c.Enabled() {
		t.Error("drop>0 profile reports disabled")
	}
	inj, err := c.Injector()
	if err != nil || inj == nil {
		t.Fatalf("injector: %v, %v", inj, err)
	}
}
