// Package cliflags centralizes the flag surface shared by the fairness
// commands (fairness, fairsim, fairsweep, fairbench) and the fairnessd
// daemon: Monte-Carlo effort (-runs, -sup), seeding (-seed), estimator
// parallelism (-parallel), transcript capture (-trace), and the chaos
// block (-chaos-seed, -drop, -delay, -max-delay, -kill-party,
// -kill-round, -timeout) used wherever sessions run over the fallible
// transport. One registration helper means one set of defaults and one
// explicit-zero semantics (the fs.Visit idiom) instead of a copy per
// command.
package cliflags

import (
	"flag"
	"time"

	"repro/internal/faultinject"
)

// Estimation is the parsed shared estimation flag block.
type Estimation struct {
	// Runs is the Monte-Carlo run count (-runs).
	Runs int
	// Sup is the per-strategy run count for sup searches (-sup);
	// registered only when EstimationSpec.Sup is set.
	Sup int
	// Seed is the master seed (-seed).
	Seed int64
	// Parallel is the estimation worker count (-parallel); registered
	// only when EstimationSpec.Parallel is set. 0 selects one worker per
	// CPU, 1 forces sequential execution; results are identical for
	// every setting (the estimator's determinism contract).
	Parallel int
	// Trace is the JSONL transcript output path (-trace); registered
	// only when EstimationSpec.Trace is set.
	Trace string

	fs *flag.FlagSet
}

// EstimationSpec selects which shared flags a command registers, with
// the command's defaults and (optionally) command-specific help text.
// Empty usage strings select the canonical text.
type EstimationSpec struct {
	// Runs is the default for -runs (always registered).
	Runs      int
	RunsUsage string
	// Sup registers -sup with default SupRuns.
	Sup      bool
	SupRuns  int
	SupUsage string
	// Seed is the default for -seed (always registered).
	Seed      int64
	SeedUsage string
	// Parallel registers -parallel (default 0 = one worker per CPU).
	Parallel      bool
	ParallelUsage string
	// Trace registers -trace (default "").
	Trace      bool
	TraceUsage string
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// RegisterEstimation registers the shared estimation flags on fs and
// returns the struct their parsed values land in. Call fs.Parse as
// usual; afterwards Given reports which flags were explicitly set.
func RegisterEstimation(fs *flag.FlagSet, spec EstimationSpec) *Estimation {
	e := &Estimation{fs: fs}
	fs.IntVar(&e.Runs, "runs", spec.Runs,
		orDefault(spec.RunsUsage, "Monte-Carlo runs"))
	if spec.Sup {
		fs.IntVar(&e.Sup, "sup", spec.SupRuns,
			orDefault(spec.SupUsage, "per-strategy runs in sup searches"))
	}
	fs.Int64Var(&e.Seed, "seed", spec.Seed,
		orDefault(spec.SeedUsage, "random seed"))
	if spec.Parallel {
		fs.IntVar(&e.Parallel, "parallel", 0,
			orDefault(spec.ParallelUsage, "estimation workers (0 = one per CPU, 1 = sequential)"))
	}
	if spec.Trace {
		fs.StringVar(&e.Trace, "trace", "",
			orDefault(spec.TraceUsage, "write a JSONL transcript of every simulated run to this file"))
	}
	return e
}

// Given reports whether the named flag was explicitly set on the parsed
// flag set — the fs.Visit idiom every command shares, so explicit zero
// values (notably -seed 0 and -runs 0) are honored instead of being
// mistaken for "flag absent" and replaced by defaults.
func (e *Estimation) Given(name string) bool {
	given := false
	e.fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			given = true
		}
	})
	return given
}

// Search is the parsed shared best-response-search flag block used by
// fairsearch, fairsweep -sup-search, and fairnessd.
type Search struct {
	// Arms is the racing beam width (-arms, 0 = no cap).
	Arms int
	// ElimDelta is the search-wide elimination error budget (-elim-delta):
	// with probability ≥ 1−δ no elimination removed a best arm.
	ElimDelta float64
	// Checkpoint is the search checkpoint path (-search-checkpoint).
	Checkpoint string
}

// RegisterSearch registers the shared search flag block on fs with the
// canonical defaults (no beam cap, δ = 0.05, no checkpoint).
func RegisterSearch(fs *flag.FlagSet) *Search {
	s := &Search{}
	fs.IntVar(&s.Arms, "arms", 0,
		"racing beam width: admit at most this many arms by static bound (0 = all)")
	fs.Float64Var(&s.ElimDelta, "elim-delta", 0.05,
		"search-wide elimination error budget δ (racing never removes a best arm with probability ≥ 1−δ)")
	fs.StringVar(&s.Checkpoint, "search-checkpoint", "",
		"stream search records to this JSONL file, resuming if it exists")
	return s
}

// Variance is the parsed shared variance-reduction flag block used by
// fairsweep and fairsearch: the statistical levers of DESIGN.md §12.
// Both are off by default; with both off every record and report is
// byte-identical to the frozen matrices.
type Variance struct {
	// PairedSeeds enables common-random-numbers run seeding
	// (-paired-seeds): cells or racing arms share per-run coin
	// sequences, so cross-cell deltas and racing eliminations certify
	// from paired differences at far fewer runs.
	PairedSeeds bool
	// ControlVariates enables exact-residual estimation
	// (-control-variate) on cells backed by an exact law (the
	// Gordon–Katz first-hit cells).
	ControlVariates bool
}

// RegisterVariance registers the variance-reduction flag block on fs.
func RegisterVariance(fs *flag.FlagSet) *Variance {
	v := &Variance{}
	fs.BoolVar(&v.PairedSeeds, "paired-seeds", false,
		"pair run seeds across cells/arms (common random numbers): adds certified delta records, changes record bytes")
	fs.BoolVar(&v.ControlVariates, "control-variate", false,
		"estimate only the residual against exact laws where one exists (Gordon–Katz first-hit): changes record bytes")
	return v
}

// Chaos is the parsed shared chaos flag block: the seeded fault profile
// applied to transport sessions.
type Chaos struct {
	// Seed drives the deterministic fault injector (-chaos-seed).
	Seed int64
	// Drop and Delay are per-frame fault probabilities (-drop, -delay).
	Drop, Delay float64
	// MaxDelay bounds injected delays (-max-delay).
	MaxDelay time.Duration
	// KillParty and KillRound schedule a crash (-kill-party 0 = nobody).
	KillParty, KillRound int
	// Timeout is the per-frame round timeout under chaos (-timeout).
	Timeout time.Duration
}

// RegisterChaos registers the chaos flag block on fs with the canonical
// defaults (the ones examples/network established).
func RegisterChaos(fs *flag.FlagSet) *Chaos {
	c := &Chaos{}
	fs.Int64Var(&c.Seed, "chaos-seed", 1, "seed for the deterministic fault injector")
	fs.Float64Var(&c.Drop, "drop", 0, "per-frame drop probability (chaos mode)")
	fs.Float64Var(&c.Delay, "delay", 0, "per-frame delay probability (chaos mode)")
	fs.DurationVar(&c.MaxDelay, "max-delay", 5*time.Millisecond, "upper bound on injected delays")
	fs.IntVar(&c.KillParty, "kill-party", 0, "party to crash (0 = nobody)")
	fs.IntVar(&c.KillRound, "kill-round", 1, "round at which -kill-party crashes")
	fs.DurationVar(&c.Timeout, "timeout", 2*time.Second, "per-frame round timeout in chaos mode")
	return c
}

// Enabled reports whether any fault was requested.
func (c *Chaos) Enabled() bool {
	return c.Drop > 0 || c.Delay > 0 || c.KillParty > 0
}

// Injector builds the seeded random fault injector for the parsed
// profile, or nil when no fault was requested.
func (c *Chaos) Injector() (faultinject.Injector, error) {
	if !c.Enabled() {
		return nil, nil
	}
	return faultinject.NewRandom(c.Seed, faultinject.Profile{
		Drop: c.Drop, Delay: c.Delay, MaxDelay: c.MaxDelay,
		KillParty: c.KillParty, KillRound: c.KillRound,
	})
}
