package circuit

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, c *Circuit) *Circuit {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBristol(&buf, c); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadBristol(&buf)
	if err != nil {
		t.Fatalf("read: %v\n%s", err, buf.String())
	}
	return got
}

func equivalent(t *testing.T, a, b *Circuit, trials int, seed int64) {
	t.Helper()
	if a.NumInputs != b.NumInputs || len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("shape mismatch: %d/%d inputs, %d/%d outputs",
			a.NumInputs, b.NumInputs, len(a.Outputs), len(b.Outputs))
	}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		in := make([]bool, a.NumInputs)
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		wa, err := a.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := b.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("trial %d output %d differs", trial, i)
			}
		}
	}
}

func TestBristolRoundTripLibrary(t *testing.T) {
	builders := map[string]func() (*Circuit, error){
		"and":          AndCircuit,
		"xor":          XorCircuit,
		"millionaires": func() (*Circuit, error) { return MillionairesCircuit(8) },
		"swap":         func() (*Circuit, error) { return SwapCircuit(6) },
		"equality":     func() (*Circuit, error) { return EqualityCircuit(5) },
		"max3":         func() (*Circuit, error) { return MaxCircuit(3, 4) },
		"sum3":         func() (*Circuit, error) { return SumCircuit(3, 4) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			c, err := build()
			if err != nil {
				t.Fatal(err)
			}
			got := roundTrip(t, c)
			equivalent(t, c, got, 50, 7)
			// Owners preserved.
			for i, o := range c.InputOwner {
				if got.InputOwner[i] != o {
					t.Fatalf("owner of wire %d: %d vs %d", i, got.InputOwner[i], o)
				}
			}
		})
	}
}

func TestReadBristolHandWritten(t *testing.T) {
	// A 2-gate circuit computing (x ∧ y) ⊕ z with shuffled wire numbers.
	src := `2 5
3 1 1 1
1 1

2 1 0 1 3 AND
2 1 3 2 4 XOR
`
	c, err := ReadBristol(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs != 3 || len(c.Gates) != 2 || len(c.Outputs) != 1 {
		t.Fatalf("shape: %+v", c)
	}
	for _, tc := range []struct {
		x, y, z, want bool
	}{
		{true, true, false, true},
		{true, true, true, false},
		{false, true, true, true},
		{false, false, false, false},
	} {
		out, err := c.Eval([]bool{tc.x, tc.y, tc.z})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != tc.want {
			t.Errorf("(%v∧%v)⊕%v = %v, want %v", tc.x, tc.y, tc.z, out[0], tc.want)
		}
	}
}

func TestReadBristolINV(t *testing.T) {
	src := `1 3
2 1 1
1 1

1 1 0 2 INV
`
	c, err := ReadBristol(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Eval([]bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != false {
		t.Error("INV(true) != false")
	}
}

func TestReadBristolErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"bad header":        "x y\n",
		"short header":      "3\n1 1\n1 1\n",
		"bad input header":  "1 3\n2 1\n1 1\n1 1 0 2 INV\n",
		"bad output header": "1 3\n2 1 1\n2 1\n1 1 0 2 INV\n",
		"zero-bit input":    "1 3\n2 1 0\n1 1\n1 1 0 2 INV\n",
		"missing gate":      "2 5\n3 1 1 1\n1 1\n2 1 0 1 3 AND\n",
		"unknown gate":      "1 3\n2 1 1\n1 1\n2 1 0 1 2 NAND\n",
		"forward ref":       "1 3\n2 1 1\n1 1\n1 1 9 2 INV\n",
		"dup wire":          "2 4\n2 1 1\n1 1\n1 1 0 2 INV\n1 1 1 2 INV\n",
		"arity":             "1 3\n2 1 1\n1 1\n2 1 0 2 INV\n",
		"too many outputs":  "1 3\n2 1 1\n1 9\n1 1 0 2 INV\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadBristol(strings.NewReader(src)); !errors.Is(err, ErrBristolFormat) {
				t.Errorf("err = %v, want ErrBristolFormat", err)
			}
		})
	}
}

func TestWriteBristolNonContiguousOwners(t *testing.T) {
	c := &Circuit{
		NumInputs:  3,
		InputOwner: []int{0, 1, 0}, // party 0 split around party 1
		Outputs:    []int{0},
	}
	var buf bytes.Buffer
	if err := WriteBristol(&buf, c); !errors.Is(err, ErrBristolFormat) {
		t.Errorf("err = %v, want ErrBristolFormat", err)
	}
}

func TestWriteBristolInvalidCircuit(t *testing.T) {
	c := &Circuit{NumInputs: 1, InputOwner: []int{0}, Outputs: []int{9}}
	if err := WriteBristol(&bytes.Buffer{}, c); err == nil {
		t.Error("invalid circuit serialized")
	}
}

func TestBristolDoubleRoundTripStable(t *testing.T) {
	c, err := MillionairesCircuit(6)
	if err != nil {
		t.Fatal(err)
	}
	once := roundTrip(t, c)
	twice := roundTrip(t, once)
	var b1, b2 bytes.Buffer
	if err := WriteBristol(&b1, once); err != nil {
		t.Fatal(err)
	}
	if err := WriteBristol(&b2, twice); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("Bristol serialization not a fixpoint after one round trip")
	}
}
