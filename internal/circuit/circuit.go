// Package circuit provides boolean circuits over XOR/AND/NOT gates — the
// representation the GMW substrate evaluates under XOR-sharing. XOR and
// NOT gates are free (local) in GMW; each AND gate costs one oblivious
// transfer per party pair.
//
// Circuits are directed acyclic graphs of gates over numbered wires.
// Wires [0, NumInputs) are input wires, each owned by a party; gate g
// drives wire NumInputs+g.
package circuit

import (
	"errors"
	"fmt"
)

// Kind enumerates gate types.
type Kind int

// Gate kinds. XOR and NOT are "free" under XOR sharing; AND requires
// interaction.
const (
	KindXor Kind = iota + 1
	KindAnd
	KindNot
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindXor:
		return "XOR"
	case KindAnd:
		return "AND"
	case KindNot:
		return "NOT"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Gate is a single gate. A and B are input wire indices; B is ignored for
// NOT gates.
type Gate struct {
	Kind Kind
	A, B int
}

// Circuit is an immutable boolean circuit.
type Circuit struct {
	// NumInputs is the number of input wires.
	NumInputs int
	// InputOwner[i] is the (0-based) party index owning input wire i.
	InputOwner []int
	// Gates in topological order; gate g drives wire NumInputs+g.
	Gates []Gate
	// Outputs lists the wire indices of the circuit outputs.
	Outputs []int
}

// NumWires returns the total wire count.
func (c *Circuit) NumWires() int { return c.NumInputs + len(c.Gates) }

// NumAndGates counts the interactive gates.
func (c *Circuit) NumAndGates() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == KindAnd {
			n++
		}
	}
	return n
}

// Validate checks structural well-formedness: owners defined for each
// input, gate inputs reference earlier wires, outputs in range.
func (c *Circuit) Validate() error {
	if len(c.InputOwner) != c.NumInputs {
		return fmt.Errorf("circuit: %d inputs but %d owners", c.NumInputs, len(c.InputOwner))
	}
	for i, g := range c.Gates {
		wire := c.NumInputs + i
		if g.A < 0 || g.A >= wire {
			return fmt.Errorf("circuit: gate %d input A=%d out of range [0,%d)", i, g.A, wire)
		}
		if g.Kind != KindNot && (g.B < 0 || g.B >= wire) {
			return fmt.Errorf("circuit: gate %d input B=%d out of range [0,%d)", i, g.B, wire)
		}
		switch g.Kind {
		case KindXor, KindAnd, KindNot:
		default:
			return fmt.Errorf("circuit: gate %d has unknown kind %d", i, int(g.Kind))
		}
	}
	for i, o := range c.Outputs {
		if o < 0 || o >= c.NumWires() {
			return fmt.Errorf("circuit: output %d references wire %d out of range", i, o)
		}
	}
	return nil
}

// ErrInputLength is returned by Eval when the input vector has the wrong
// length.
var ErrInputLength = errors.New("circuit: wrong number of input bits")

// Eval evaluates the circuit in the clear. It is the reference semantics
// the GMW substrate must match.
func (c *Circuit) Eval(inputs []bool) ([]bool, error) {
	if len(inputs) != c.NumInputs {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrInputLength, len(inputs), c.NumInputs)
	}
	wires := make([]bool, c.NumWires())
	copy(wires, inputs)
	for i, g := range c.Gates {
		var v bool
		switch g.Kind {
		case KindXor:
			v = wires[g.A] != wires[g.B]
		case KindAnd:
			v = wires[g.A] && wires[g.B]
		case KindNot:
			v = !wires[g.A]
		default:
			return nil, fmt.Errorf("circuit: gate %d has unknown kind %d", i, int(g.Kind))
		}
		wires[c.NumInputs+i] = v
	}
	out := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = wires[o]
	}
	return out, nil
}

// Builder incrementally constructs a circuit. Methods return wire indices.
type Builder struct {
	numInputs  int
	inputOwner []int
	gates      []Gate
	outputs    []int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Input allocates one input wire owned by party.
func (b *Builder) Input(party int) int {
	if len(b.gates) > 0 {
		// Keep input wires contiguous at the front: inputs after gates
		// would break the wire-numbering convention.
		panic("circuit: all inputs must be declared before gates")
	}
	w := b.numInputs
	b.numInputs++
	b.inputOwner = append(b.inputOwner, party)
	return w
}

// Inputs allocates count input wires owned by party.
func (b *Builder) Inputs(party, count int) []int {
	ws := make([]int, count)
	for i := range ws {
		ws[i] = b.Input(party)
	}
	return ws
}

// Xor adds an XOR gate and returns its output wire.
func (b *Builder) Xor(a, x int) int { return b.gate(Gate{Kind: KindXor, A: a, B: x}) }

// And adds an AND gate and returns its output wire.
func (b *Builder) And(a, x int) int { return b.gate(Gate{Kind: KindAnd, A: a, B: x}) }

// Not adds a NOT gate and returns its output wire.
func (b *Builder) Not(a int) int { return b.gate(Gate{Kind: KindNot, A: a}) }

// Or adds a ∨ via De Morgan: a ∨ b = ¬(¬a ∧ ¬b).
func (b *Builder) Or(a, x int) int { return b.Not(b.And(b.Not(a), b.Not(x))) }

// Mux returns sel ? hi : lo, computed as lo ⊕ (sel ∧ (lo ⊕ hi)).
func (b *Builder) Mux(sel, lo, hi int) int {
	return b.Xor(lo, b.And(sel, b.Xor(lo, hi)))
}

// MuxVec multiplexes two equal-length wire vectors.
func (b *Builder) MuxVec(sel int, lo, hi []int) []int {
	if len(lo) != len(hi) {
		panic("circuit: MuxVec length mismatch")
	}
	out := make([]int, len(lo))
	for i := range lo {
		out[i] = b.Mux(sel, lo[i], hi[i])
	}
	return out
}

// Equal returns a wire that is 1 iff the two vectors are bitwise equal.
func (b *Builder) Equal(xs, ys []int) int {
	if len(xs) != len(ys) {
		panic("circuit: Equal length mismatch")
	}
	acc := -1
	for i := range xs {
		eq := b.Not(b.Xor(xs[i], ys[i]))
		if acc < 0 {
			acc = eq
		} else {
			acc = b.And(acc, eq)
		}
	}
	if acc < 0 {
		panic("circuit: Equal on empty vectors")
	}
	return acc
}

// GreaterThan returns a wire that is 1 iff x > y, both little-endian
// unsigned vectors of equal length. Classic ripple comparator:
// gt_i = x_i·¬y_i ⊕ (x_i≡y_i)·gt_{i-1}, scanning from LSB to MSB.
func (b *Builder) GreaterThan(xs, ys []int) int {
	if len(xs) != len(ys) {
		panic("circuit: GreaterThan length mismatch")
	}
	if len(xs) == 0 {
		panic("circuit: GreaterThan on empty vectors")
	}
	gt := b.And(xs[0], b.Not(ys[0]))
	for i := 1; i < len(xs); i++ {
		bitGT := b.And(xs[i], b.Not(ys[i]))
		eq := b.Not(b.Xor(xs[i], ys[i]))
		gt = b.Xor(bitGT, b.And(eq, gt))
	}
	return gt
}

// Add returns the little-endian sum (with carry-out as the last wire) of
// two equal-length vectors: a ripple-carry adder.
func (b *Builder) Add(xs, ys []int) []int {
	if len(xs) != len(ys) {
		panic("circuit: Add length mismatch")
	}
	out := make([]int, 0, len(xs)+1)
	carry := -1
	for i := range xs {
		s := b.Xor(xs[i], ys[i])
		if carry >= 0 {
			newCarry := b.Xor(b.And(xs[i], ys[i]), b.And(s, carry))
			s = b.Xor(s, carry)
			carry = newCarry
		} else {
			carry = b.And(xs[i], ys[i])
		}
		out = append(out, s)
	}
	return append(out, carry)
}

// Output marks wires as circuit outputs (appended in order).
func (b *Builder) Output(ws ...int) { b.outputs = append(b.outputs, ws...) }

// Build finalizes and validates the circuit.
func (b *Builder) Build() (*Circuit, error) {
	c := &Circuit{
		NumInputs:  b.numInputs,
		InputOwner: append([]int(nil), b.inputOwner...),
		Gates:      append([]Gate(nil), b.gates...),
		Outputs:    append([]int(nil), b.outputs...),
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func (b *Builder) gate(g Gate) int {
	w := b.numInputs + len(b.gates)
	b.gates = append(b.gates, g)
	return w
}
