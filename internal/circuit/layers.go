package circuit

// Layering for round-structured evaluation: the GMW online phase opens
// the Beaver-masked inputs of all AND gates in one topological layer in a
// single communication round, so a circuit's round complexity is its
// AND depth.

// Layers partitions the gate indices into topological layers by AND
// depth: layer k contains exactly the AND gates whose inputs depend on
// k−1 earlier AND layers; XOR/NOT gates are free (absorbed between
// layers). The returned slice has one entry per layer, each listing gate
// indices (into c.Gates) of that layer's AND gates, in ascending order.
func (c *Circuit) Layers() [][]int {
	// depth[w] = number of AND layers wire w depends on.
	depth := make([]int, c.NumWires())
	var layers [][]int
	for g, gate := range c.Gates {
		w := c.NumInputs + g
		switch gate.Kind {
		case KindNot:
			depth[w] = depth[gate.A]
		case KindXor:
			depth[w] = maxInt(depth[gate.A], depth[gate.B])
		case KindAnd:
			d := maxInt(depth[gate.A], depth[gate.B])
			depth[w] = d + 1
			for len(layers) <= d {
				layers = append(layers, nil)
			}
			layers[d] = append(layers[d], g)
		}
	}
	return layers
}

// AndDepth is the circuit's multiplicative depth — the number of
// communication rounds the GMW online phase needs before output reveal.
func (c *Circuit) AndDepth() int { return len(c.Layers()) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
