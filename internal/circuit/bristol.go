package circuit

// Bristol-fashion circuit interchange format, the de-facto standard for
// sharing boolean circuits between MPC implementations
// (https://homes.esat.kuleuven.be/~nsmart/MPC/):
//
//	<#gates> <#wires>
//	<#input-values> <bits-of-input-1> ... <bits-of-input-niv>
//	<#output-values> <bits-of-output-1> ... <bits-of-output-nov>
//	<blank line>
//	<#in> <#out> <in-wires...> <out-wire> <GATE>
//
// with GATE ∈ {XOR, AND, INV}. Input value i is owned by party i−1 (the
// two- or n-party convention matches our InputOwner labels); output
// wires are the last wires of the file in order.
//
// Our internal representation requires gate g to drive wire
// NumInputs+g; Bristol allows arbitrary output-wire numbering, so the
// importer renumbers wires while preserving semantics.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrBristolFormat is wrapped by all Bristol parse errors.
var ErrBristolFormat = errors.New("circuit: invalid Bristol format")

// WriteBristol serializes the circuit in Bristol fashion. Input values
// are grouped by owning party (each party's wires must be contiguous,
// which the Builder guarantees); all outputs form one output value.
func WriteBristol(w io.Writer, c *Circuit) error {
	if err := c.Validate(); err != nil {
		return err
	}
	// Group contiguous input wires by owner.
	var groups []int // bits per input value
	for i := 0; i < c.NumInputs; {
		owner := c.InputOwner[i]
		j := i
		for j < c.NumInputs && c.InputOwner[j] == owner {
			j++
		}
		groups = append(groups, j-i)
		i = j
	}
	// Verify owners do not reappear (non-contiguous ownership cannot be
	// represented in the per-party header).
	seen := map[int]bool{}
	cursor := 0
	for _, gsize := range groups {
		owner := c.InputOwner[cursor]
		if seen[owner] {
			return fmt.Errorf("%w: party %d owns non-contiguous input wires", ErrBristolFormat, owner)
		}
		seen[owner] = true
		cursor += gsize
	}

	// Bristol requires the output wires to be the final wires of the
	// numbering, in order. If the circuit's outputs are not already in
	// that position, relocate them with double-inverter passthroughs.
	numOut := len(c.Outputs)
	relocate := false
	for i, o := range c.Outputs {
		if o != c.NumWires()-numOut+i {
			relocate = true
			break
		}
	}
	numGates, numWires := len(c.Gates), c.NumWires()
	if relocate {
		numGates += 2 * numOut
		numWires += 2 * numOut
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", numGates, numWires)
	fmt.Fprintf(bw, "%d", len(groups))
	for _, gsize := range groups {
		fmt.Fprintf(bw, " %d", gsize)
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "1 %d\n\n", numOut)
	for g, gate := range c.Gates {
		out := c.NumInputs + g
		switch gate.Kind {
		case KindXor:
			fmt.Fprintf(bw, "2 1 %d %d %d XOR\n", gate.A, gate.B, out)
		case KindAnd:
			fmt.Fprintf(bw, "2 1 %d %d %d AND\n", gate.A, gate.B, out)
		case KindNot:
			fmt.Fprintf(bw, "1 1 %d %d INV\n", gate.A, out)
		default:
			return fmt.Errorf("%w: unknown gate kind %d", ErrBristolFormat, int(gate.Kind))
		}
	}
	if relocate {
		base := c.NumWires()
		for i, o := range c.Outputs {
			fmt.Fprintf(bw, "1 1 %d %d INV\n", o, base+i)
		}
		for i := range c.Outputs {
			fmt.Fprintf(bw, "1 1 %d %d INV\n", base+i, base+numOut+i)
		}
	}
	return bw.Flush()
}

// ReadBristol parses a Bristol-fashion circuit. Output wires are taken
// per the header: the last Σ output-bits wires of the numbering, in
// ascending order (the standard convention).
func ReadBristol(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	next := func() ([]string, error) {
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) > 0 {
				return fields, nil
			}
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	ints := func(fields []string) ([]int, error) {
		out := make([]int, len(fields))
		for i, f := range fields {
			var v int
			if _, err := fmt.Sscanf(f, "%d", &v); err != nil {
				return nil, fmt.Errorf("%w: bad integer %q", ErrBristolFormat, f)
			}
			out[i] = v
		}
		return out, nil
	}

	header, err := next()
	if err != nil {
		return nil, fmt.Errorf("%w: missing header", ErrBristolFormat)
	}
	hv, err := ints(header)
	if err != nil || len(hv) != 2 {
		return nil, fmt.Errorf("%w: header needs <#gates> <#wires>", ErrBristolFormat)
	}
	numGates, numWires := hv[0], hv[1]
	if numGates < 0 || numWires <= 0 || numGates > numWires {
		return nil, fmt.Errorf("%w: implausible sizes %d/%d", ErrBristolFormat, numGates, numWires)
	}

	inLine, err := next()
	if err != nil {
		return nil, fmt.Errorf("%w: missing input header", ErrBristolFormat)
	}
	iv, err := ints(inLine)
	if err != nil || len(iv) < 1 || len(iv) != iv[0]+1 {
		return nil, fmt.Errorf("%w: malformed input header", ErrBristolFormat)
	}
	var inputBits, totalIn int
	owners := []int{}
	for party, bits := range iv[1:] {
		if bits <= 0 {
			return nil, fmt.Errorf("%w: input value with %d bits", ErrBristolFormat, bits)
		}
		for k := 0; k < bits; k++ {
			owners = append(owners, party)
		}
		totalIn += bits
	}
	inputBits = totalIn

	outLine, err := next()
	if err != nil {
		return nil, fmt.Errorf("%w: missing output header", ErrBristolFormat)
	}
	ov, err := ints(outLine)
	if err != nil || len(ov) < 1 || len(ov) != ov[0]+1 {
		return nil, fmt.Errorf("%w: malformed output header", ErrBristolFormat)
	}
	totalOut := 0
	for _, bits := range ov[1:] {
		if bits <= 0 {
			return nil, fmt.Errorf("%w: output value with %d bits", ErrBristolFormat, bits)
		}
		totalOut += bits
	}
	if totalOut > numWires {
		return nil, fmt.Errorf("%w: %d output bits exceed %d wires", ErrBristolFormat, totalOut, numWires)
	}

	// Parse gates; renumber output wires to our convention (gate g
	// drives wire inputBits+g) via a translation map.
	trans := make(map[int]int, numWires) // bristol wire -> internal wire
	for wi := 0; wi < inputBits; wi++ {
		trans[wi] = wi
	}
	gates := make([]Gate, 0, numGates)
	lookup := func(w int) (int, error) {
		v, ok := trans[w]
		if !ok {
			return 0, fmt.Errorf("%w: wire %d used before defined", ErrBristolFormat, w)
		}
		return v, nil
	}
	for gi := 0; gi < numGates; gi++ {
		fields, err := next()
		if err != nil {
			return nil, fmt.Errorf("%w: missing gate %d", ErrBristolFormat, gi)
		}
		if len(fields) < 4 {
			return nil, fmt.Errorf("%w: short gate line %v", ErrBristolFormat, fields)
		}
		kindName := fields[len(fields)-1]
		nums, err := ints(fields[:len(fields)-1])
		if err != nil {
			return nil, err
		}
		nin, nout := nums[0], nums[1]
		if nout != 1 || len(nums) != 2+nin+nout {
			return nil, fmt.Errorf("%w: gate arity mismatch %v", ErrBristolFormat, fields)
		}
		outWire := nums[len(nums)-1]
		if _, dup := trans[outWire]; dup {
			return nil, fmt.Errorf("%w: wire %d defined twice", ErrBristolFormat, outWire)
		}
		var gate Gate
		switch kindName {
		case "XOR", "AND":
			if nin != 2 {
				return nil, fmt.Errorf("%w: %s needs 2 inputs", ErrBristolFormat, kindName)
			}
			a, err := lookup(nums[2])
			if err != nil {
				return nil, err
			}
			b, err := lookup(nums[3])
			if err != nil {
				return nil, err
			}
			gate = Gate{Kind: KindXor, A: a, B: b}
			if kindName == "AND" {
				gate.Kind = KindAnd
			}
		case "INV", "NOT":
			if nin != 1 {
				return nil, fmt.Errorf("%w: INV needs 1 input", ErrBristolFormat)
			}
			a, err := lookup(nums[2])
			if err != nil {
				return nil, err
			}
			gate = Gate{Kind: KindNot, A: a}
		default:
			return nil, fmt.Errorf("%w: unsupported gate %q", ErrBristolFormat, kindName)
		}
		trans[outWire] = inputBits + len(gates)
		gates = append(gates, gate)
	}

	// Outputs: the last totalOut Bristol wires, ascending.
	outputs := make([]int, 0, totalOut)
	for w := numWires - totalOut; w < numWires; w++ {
		v, ok := trans[w]
		if !ok {
			return nil, fmt.Errorf("%w: output wire %d undefined", ErrBristolFormat, w)
		}
		outputs = append(outputs, v)
	}

	c := &Circuit{
		NumInputs:  inputBits,
		InputOwner: owners,
		Gates:      gates,
		Outputs:    outputs,
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBristolFormat, err)
	}
	return c, nil
}
