package circuit

import "fmt"

// Library of circuits used by the examples and experiments.

// AndCircuit computes x1 ∧ x2 for one bit per party — the function of the
// leaky protocol Π̃ (Appendix C.5).
func AndCircuit() (*Circuit, error) {
	b := NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	b.Output(b.And(x, y))
	return b.Build()
}

// XorCircuit computes x1 ⊕ x2 for one bit per party — Cleve's classic
// coin-flip-style function.
func XorCircuit() (*Circuit, error) {
	b := NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	b.Output(b.Xor(x, y))
	return b.Build()
}

// SwapCircuit computes the paper's swap function f_swp(x1, x2) = (x2, x1)
// as a public-output circuit: the global output is x2 ‖ x1 (bits little-
// endian per operand). Each party's private half is extracted by the
// application layer; the paper's lower bounds (Theorem 4) use this f.
func SwapCircuit(bits int) (*Circuit, error) {
	if bits <= 0 {
		return nil, fmt.Errorf("circuit: swap: bits must be positive, got %d", bits)
	}
	b := NewBuilder()
	xs := b.Inputs(0, bits)
	ys := b.Inputs(1, bits)
	// Outputs must be gate-driven wires for GMW's reveal phase to have a
	// uniform shape; pass inputs through XOR-with-zero (x ⊕ x ⊕ x = x via
	// NOT(NOT(x)) keeps it single-input).
	for _, y := range ys {
		b.Output(b.Not(b.Not(y)))
	}
	for _, x := range xs {
		b.Output(b.Not(b.Not(x)))
	}
	return b.Build()
}

// MillionairesCircuit computes [x1 > x2] for two `bits`-bit unsigned
// inputs — Yao's millionaires' problem, the quickstart's running example.
func MillionairesCircuit(bits int) (*Circuit, error) {
	if bits <= 0 {
		return nil, fmt.Errorf("circuit: millionaires: bits must be positive, got %d", bits)
	}
	b := NewBuilder()
	xs := b.Inputs(0, bits)
	ys := b.Inputs(1, bits)
	b.Output(b.GreaterThan(xs, ys))
	return b.Build()
}

// ConcatCircuit computes the multi-party concatenation function
// f(x1, …, xn) = x1 ‖ x2 ‖ … ‖ xn of Lemmas 12/13/15/16 — every party
// contributes `bits` bits and the public output is the concatenation.
func ConcatCircuit(n, bits int) (*Circuit, error) {
	if n < 2 || bits <= 0 {
		return nil, fmt.Errorf("circuit: concat: need n >= 2 and bits > 0, got n=%d bits=%d", n, bits)
	}
	b := NewBuilder()
	all := make([][]int, n)
	for p := 0; p < n; p++ {
		all[p] = b.Inputs(p, bits)
	}
	for p := 0; p < n; p++ {
		for _, w := range all[p] {
			b.Output(b.Not(b.Not(w)))
		}
	}
	return b.Build()
}

// MaxCircuit computes the maximum of n unsigned `bits`-bit inputs — the
// sealed-bid auction example's function (winner price; the application
// derives the winner index by comparing to its own bid).
func MaxCircuit(n, bits int) (*Circuit, error) {
	if n < 2 || bits <= 0 {
		return nil, fmt.Errorf("circuit: max: need n >= 2 and bits > 0, got n=%d bits=%d", n, bits)
	}
	b := NewBuilder()
	all := make([][]int, n)
	for p := 0; p < n; p++ {
		all[p] = b.Inputs(p, bits)
	}
	best := all[0]
	for p := 1; p < n; p++ {
		gt := b.GreaterThan(all[p], best)
		best = b.MuxVec(gt, best, all[p])
	}
	b.Output(best...)
	return b.Build()
}

// SumCircuit computes the `bits+ceil(log2 n)`-bit sum of n unsigned
// `bits`-bit inputs (used by tests as a nontrivial arithmetic circuit).
func SumCircuit(n, bits int) (*Circuit, error) {
	if n < 2 || bits <= 0 {
		return nil, fmt.Errorf("circuit: sum: need n >= 2 and bits > 0, got n=%d bits=%d", n, bits)
	}
	b := NewBuilder()
	all := make([][]int, n)
	for p := 0; p < n; p++ {
		all[p] = b.Inputs(p, bits)
	}
	acc := all[0]
	for p := 1; p < n; p++ {
		operand := all[p]
		// Pad the shorter operand with constant-zero wires (x ⊕ x).
		for len(operand) < len(acc) {
			operand = append(operand, b.Xor(all[p][0], all[p][0]))
		}
		for len(acc) < len(operand) {
			acc = append(acc, b.Xor(all[0][0], all[0][0]))
		}
		acc = b.Add(acc, operand)
	}
	b.Output(acc...)
	return b.Build()
}

// EqualityCircuit computes [x1 == x2] for two `bits`-bit inputs — the
// socialist millionaires variant used in tests.
func EqualityCircuit(bits int) (*Circuit, error) {
	if bits <= 0 {
		return nil, fmt.Errorf("circuit: equality: bits must be positive, got %d", bits)
	}
	b := NewBuilder()
	xs := b.Inputs(0, bits)
	ys := b.Inputs(1, bits)
	b.Output(b.Equal(xs, ys))
	return b.Build()
}

// BitsToUint packs little-endian bits into a uint64.
func BitsToUint(bs []bool) uint64 {
	var v uint64
	for i, b := range bs {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

// UintToBits unpacks a uint64 into `bits` little-endian booleans.
func UintToBits(v uint64, bits int) []bool {
	out := make([]bool, bits)
	for i := range out {
		out[i] = v&(1<<uint(i)) != 0
	}
	return out
}
