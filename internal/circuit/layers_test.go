package circuit

import "testing"

func TestLayersSimple(t *testing.T) {
	// z = (a ∧ b) ∧ (c ∧ d): two layer-0 ANDs feeding one layer-1 AND.
	b := NewBuilder()
	a := b.Input(0)
	x := b.Input(0)
	c := b.Input(1)
	d := b.Input(1)
	ab := b.And(a, x)
	cd := b.And(c, d)
	b.Output(b.And(ab, cd))
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	layers := circ.Layers()
	if len(layers) != 2 {
		t.Fatalf("layers = %v", layers)
	}
	if len(layers[0]) != 2 || len(layers[1]) != 1 {
		t.Errorf("layer sizes = %d,%d", len(layers[0]), len(layers[1]))
	}
	if circ.AndDepth() != 2 {
		t.Errorf("AndDepth = %d", circ.AndDepth())
	}
}

func TestLayersXorFree(t *testing.T) {
	// XOR chains do not add depth.
	b := NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	v := b.Xor(x, y)
	for i := 0; i < 5; i++ {
		v = b.Xor(v, x)
	}
	b.Output(b.And(v, y))
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if circ.AndDepth() != 1 {
		t.Errorf("AndDepth = %d, want 1", circ.AndDepth())
	}
}

func TestLayersNoAnds(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	b.Output(b.Xor(x, y))
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := circ.Layers(); len(got) != 0 {
		t.Errorf("layers = %v, want none", got)
	}
	if circ.AndDepth() != 0 {
		t.Error("AndDepth of XOR circuit should be 0")
	}
}

func TestLayersCoverAllAndGates(t *testing.T) {
	circ, err := MaxCircuit(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	layers := circ.Layers()
	seen := map[int]bool{}
	total := 0
	for _, layer := range layers {
		for _, g := range layer {
			if circ.Gates[g].Kind != KindAnd {
				t.Fatalf("gate %d in layers is not AND", g)
			}
			if seen[g] {
				t.Fatalf("gate %d in two layers", g)
			}
			seen[g] = true
			total++
		}
	}
	if total != circ.NumAndGates() {
		t.Errorf("layers cover %d AND gates, circuit has %d", total, circ.NumAndGates())
	}
	// Layer ordering: every AND gate's operand wires must be producible
	// from strictly earlier layers (checked implicitly by depth
	// construction; spot-check monotone gate indices within layers).
	for _, layer := range layers {
		for i := 1; i < len(layer); i++ {
			if layer[i] <= layer[i-1] {
				t.Fatal("layer gate indices not ascending")
			}
		}
	}
}

func TestMillionairesDepthLinear(t *testing.T) {
	// The ripple comparator has AND depth linear in the bit width.
	c8, err := MillionairesCircuit(8)
	if err != nil {
		t.Fatal(err)
	}
	c16, err := MillionairesCircuit(16)
	if err != nil {
		t.Fatal(err)
	}
	if c16.AndDepth() <= c8.AndDepth() {
		t.Errorf("depths: 8-bit %d, 16-bit %d", c8.AndDepth(), c16.AndDepth())
	}
}
