package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindXor, "XOR"},
		{KindAnd, "AND"},
		{KindNot, "NOT"},
		{Kind(99), "Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestBasicGates(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	b.Output(b.Xor(x, y), b.And(x, y), b.Not(x), b.Or(x, y))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x, y bool
		want [4]bool // xor, and, not-x, or
	}{
		{false, false, [4]bool{false, false, true, false}},
		{false, true, [4]bool{true, false, true, true}},
		{true, false, [4]bool{true, false, false, true}},
		{true, true, [4]bool{false, true, false, true}},
	}
	for _, tt := range tests {
		got, err := c.Eval([]bool{tt.x, tt.y})
		if err != nil {
			t.Fatal(err)
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("x=%v y=%v output %d = %v, want %v", tt.x, tt.y, i, got[i], tt.want[i])
			}
		}
	}
}

func TestMux(t *testing.T) {
	b := NewBuilder()
	sel := b.Input(0)
	lo := b.Input(0)
	hi := b.Input(1)
	b.Output(b.Mux(sel, lo, hi))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []bool{false, true} {
		for _, l := range []bool{false, true} {
			for _, h := range []bool{false, true} {
				got, err := c.Eval([]bool{s, l, h})
				if err != nil {
					t.Fatal(err)
				}
				want := l
				if s {
					want = h
				}
				if got[0] != want {
					t.Errorf("mux(%v,%v,%v) = %v, want %v", s, l, h, got[0], want)
				}
			}
		}
	}
}

func TestEvalWrongInputLength(t *testing.T) {
	c, err := AndCircuit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Eval([]bool{true}); err == nil {
		t.Error("Eval with wrong input length succeeded")
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		c    Circuit
	}{
		{"owner mismatch", Circuit{NumInputs: 2, InputOwner: []int{0}}},
		{"gate forward ref", Circuit{NumInputs: 1, InputOwner: []int{0}, Gates: []Gate{{Kind: KindXor, A: 0, B: 5}}}},
		{"gate negative ref", Circuit{NumInputs: 1, InputOwner: []int{0}, Gates: []Gate{{Kind: KindXor, A: -1, B: 0}}}},
		{"unknown kind", Circuit{NumInputs: 1, InputOwner: []int{0}, Gates: []Gate{{Kind: Kind(9), A: 0, B: 0}}}},
		{"output out of range", Circuit{NumInputs: 1, InputOwner: []int{0}, Outputs: []int{5}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.c.Validate(); err == nil {
				t.Error("Validate succeeded, want error")
			}
		})
	}
}

func TestNotGateIgnoresB(t *testing.T) {
	// NOT gate with arbitrary B must validate (B unused).
	c := Circuit{NumInputs: 1, InputOwner: []int{0}, Gates: []Gate{{Kind: KindNot, A: 0, B: -99}}, Outputs: []int{1}}
	if err := c.Validate(); err != nil {
		t.Errorf("NOT with junk B failed validation: %v", err)
	}
	out, err := c.Eval([]bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != false {
		t.Error("NOT(true) != false")
	}
}

func TestAndCircuit(t *testing.T) {
	c, err := AndCircuit()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []bool{false, true} {
		for _, y := range []bool{false, true} {
			got, err := c.Eval([]bool{x, y})
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != (x && y) {
				t.Errorf("AND(%v,%v) = %v", x, y, got[0])
			}
		}
	}
}

func TestXorCircuit(t *testing.T) {
	c, err := XorCircuit()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []bool{false, true} {
		for _, y := range []bool{false, true} {
			got, err := c.Eval([]bool{x, y})
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != (x != y) {
				t.Errorf("XOR(%v,%v) = %v", x, y, got[0])
			}
		}
	}
}

func TestSwapCircuit(t *testing.T) {
	const bits = 8
	c, err := SwapCircuit(bits)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y uint8) bool {
		in := append(UintToBits(uint64(x), bits), UintToBits(uint64(y), bits)...)
		out, err := c.Eval(in)
		if err != nil {
			return false
		}
		// Output is y ‖ x.
		return BitsToUint(out[:bits]) == uint64(y) && BitsToUint(out[bits:]) == uint64(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSwapCircuitBadBits(t *testing.T) {
	if _, err := SwapCircuit(0); err == nil {
		t.Error("SwapCircuit(0) succeeded")
	}
}

func TestMillionairesCircuit(t *testing.T) {
	const bits = 8
	c, err := MillionairesCircuit(bits)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y uint8) bool {
		in := append(UintToBits(uint64(x), bits), UintToBits(uint64(y), bits)...)
		out, err := c.Eval(in)
		if err != nil {
			return false
		}
		return out[0] == (x > y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualityCircuit(t *testing.T) {
	const bits = 6
	c, err := EqualityCircuit(bits)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y uint8) bool {
		xv, yv := uint64(x)&63, uint64(y)&63
		in := append(UintToBits(xv, bits), UintToBits(yv, bits)...)
		out, err := c.Eval(in)
		if err != nil {
			return false
		}
		return out[0] == (xv == yv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcatCircuit(t *testing.T) {
	c, err := ConcatCircuit(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		vals := []uint64{uint64(rng.Intn(16)), uint64(rng.Intn(16)), uint64(rng.Intn(16))}
		var in []bool
		for _, v := range vals {
			in = append(in, UintToBits(v, 4)...)
		}
		out, err := c.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 3; p++ {
			if got := BitsToUint(out[p*4 : (p+1)*4]); got != vals[p] {
				t.Fatalf("concat segment %d = %d, want %d", p, got, vals[p])
			}
		}
	}
}

func TestMaxCircuit(t *testing.T) {
	c, err := MaxCircuit(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		var in []bool
		want := uint64(0)
		for p := 0; p < 4; p++ {
			v := uint64(rng.Intn(64))
			if v > want {
				want = v
			}
			in = append(in, UintToBits(v, 6)...)
		}
		out, err := c.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := BitsToUint(out); got != want {
			t.Fatalf("max = %d, want %d", got, want)
		}
	}
}

func TestSumCircuit(t *testing.T) {
	c, err := SumCircuit(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		var in []bool
		want := uint64(0)
		for p := 0; p < 3; p++ {
			v := uint64(rng.Intn(32))
			want += v
			in = append(in, UintToBits(v, 5)...)
		}
		out, err := c.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := BitsToUint(out); got != want {
			t.Fatalf("sum = %d, want %d", got, want)
		}
	}
}

func TestAdder(t *testing.T) {
	b := NewBuilder()
	xs := b.Inputs(0, 8)
	ys := b.Inputs(1, 8)
	b.Output(b.Add(xs, ys)...)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y uint8) bool {
		in := append(UintToBits(uint64(x), 8), UintToBits(uint64(y), 8)...)
		out, err := c.Eval(in)
		if err != nil {
			return false
		}
		return BitsToUint(out) == uint64(x)+uint64(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLibraryConstructorsRejectBadArgs(t *testing.T) {
	if _, err := MillionairesCircuit(0); err == nil {
		t.Error("MillionairesCircuit(0)")
	}
	if _, err := ConcatCircuit(1, 4); err == nil {
		t.Error("ConcatCircuit(n=1)")
	}
	if _, err := ConcatCircuit(3, 0); err == nil {
		t.Error("ConcatCircuit(bits=0)")
	}
	if _, err := MaxCircuit(1, 4); err == nil {
		t.Error("MaxCircuit(n=1)")
	}
	if _, err := SumCircuit(2, 0); err == nil {
		t.Error("SumCircuit(bits=0)")
	}
	if _, err := EqualityCircuit(-1); err == nil {
		t.Error("EqualityCircuit(-1)")
	}
}

func TestNumAndGates(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	b.Output(b.And(b.Xor(x, y), b.And(x, y)))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.NumAndGates(); got != 2 {
		t.Errorf("NumAndGates = %d, want 2", got)
	}
	if got := c.NumWires(); got != 5 {
		t.Errorf("NumWires = %d, want 5", got)
	}
}

func TestBitsRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return BitsToUint(UintToBits(uint64(v), 32)) == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEvalMax8Party(b *testing.B) {
	c, err := MaxCircuit(8, 16)
	if err != nil {
		b.Fatal(err)
	}
	in := make([]bool, c.NumInputs)
	for i := range in {
		in[i] = i%3 == 0
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Eval(in); err != nil {
			b.Fatal(err)
		}
	}
}
