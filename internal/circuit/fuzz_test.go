package circuit

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadBristol exercises the parser against arbitrary inputs: it must
// never panic, and anything it accepts must validate and survive a
// write/read round trip.
func FuzzReadBristol(f *testing.F) {
	seeds := []string{
		"2 5\n3 1 1 1\n1 1\n\n2 1 0 1 3 AND\n2 1 3 2 4 XOR\n",
		"1 3\n2 1 1\n1 1\n\n1 1 0 2 INV\n",
		"0 1\n1 1\n1 1\n\n",
		"",
		"garbage",
		"2 5\n3 1 1 1\n1 1\n\n2 1 0 1 3 NAND\n",
	}
	mil, err := MillionairesCircuit(4)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBristol(&buf, mil); err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, buf.String())

	f.Fuzz(func(t *testing.T, src string) {
		c, err := ReadBristol(strings.NewReader(src))
		if err != nil {
			return // rejected input: fine
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid circuit: %v", err)
		}
		// Accepted circuits must survive a round trip semantically.
		var out bytes.Buffer
		if err := WriteBristol(&out, c); err != nil {
			// Non-contiguous owners are unwritable; everything else must
			// serialize.
			if !strings.Contains(err.Error(), "non-contiguous") {
				t.Fatalf("re-serialize: %v", err)
			}
			return
		}
		c2, err := ReadBristol(&out)
		if err != nil {
			t.Fatalf("re-parse: %v\n%s", err, out.String())
		}
		if c2.NumInputs != c.NumInputs || len(c2.Outputs) != len(c.Outputs) {
			t.Fatalf("round trip changed shape: %d/%d inputs, %d/%d outputs",
				c.NumInputs, c2.NumInputs, len(c.Outputs), len(c2.Outputs))
		}
		// Evaluate both on a fixed input pattern.
		in := make([]bool, c.NumInputs)
		for i := range in {
			in[i] = i%2 == 0
		}
		o1, err1 := c.Eval(in)
		o2, err2 := c2.Eval(in)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("eval divergence: %v vs %v", err1, err2)
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("output %d differs after round trip", i)
			}
		}
	})
}

// FuzzBuilderEval cross-checks random builder programs against a direct
// reference evaluation.
func FuzzBuilderEval(f *testing.F) {
	f.Add(uint16(0x1234), uint8(3))
	f.Add(uint16(0xffff), uint8(7))
	f.Fuzz(func(t *testing.T, program uint16, inBits uint8) {
		n := int(inBits%6) + 2
		b := NewBuilder()
		wires := b.Inputs(0, n)
		// Interpret `program` as a sequence of gate ops over the wire pool.
		p := program
		for step := 0; step < 8; step++ {
			op := p & 3
			a := wires[int(p>>2)%len(wires)]
			c := wires[int(p>>5)%len(wires)]
			p = p>>3 | p<<13
			switch op {
			case 0:
				wires = append(wires, b.Xor(a, c))
			case 1:
				wires = append(wires, b.And(a, c))
			case 2:
				wires = append(wires, b.Not(a))
			default:
				wires = append(wires, b.Or(a, c))
			}
		}
		b.Output(wires[len(wires)-1])
		circ, err := b.Build()
		if err != nil {
			t.Fatalf("builder produced invalid circuit: %v", err)
		}
		in := make([]bool, n)
		for i := range in {
			in[i] = program&(1<<uint(i)) != 0
		}
		if _, err := circ.Eval(in); err != nil {
			t.Fatalf("eval: %v", err)
		}
		// Layers must cover exactly the AND gates.
		total := 0
		for _, layer := range circ.Layers() {
			total += len(layer)
		}
		if total != circ.NumAndGates() {
			t.Fatalf("layers cover %d of %d AND gates", total, circ.NumAndGates())
		}
	})
}
