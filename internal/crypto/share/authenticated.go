package share

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/crypto/mac"
	"repro/internal/field"
)

// Authenticated two-out-of-two additive secret sharing, exactly as in
// Appendix A of the paper:
//
// A sharing of a secret s is a pair of random summand vectors (s1, s2)
// with s1 + s2 = (s, tag(s, k1), tag(s, k2)), where k1, k2 are MAC keys
// associated with p1 and p2. Party p_i holds its summand s_i, a MAC tag
// on s_i under the *other* party's key k_{¬i} (so the other party can
// verify the summand on receipt), and its own key k_i (used to verify
// incoming summands and the reconstructed secret's i-th tag).

// authWidth is the width of the authenticated payload vector
// (s, tag(s,k1), tag(s,k2)).
const authWidth = 3

// Errors surfaced during authenticated reconstruction. Protocols map
// ErrInvalidShare to "the counterparty cheated → take default input".
var (
	ErrInvalidShare  = errors.New("share: counterparty summand failed MAC verification")
	ErrInvalidSecret = errors.New("share: reconstructed secret failed MAC verification")
)

// AuthShare is everything party i holds of an authenticated 2-of-2
// sharing: paper notation ⟨s⟩_i plus the party's verification key.
type AuthShare struct {
	// Index is the party index, 1 or 2.
	Index int
	// Summand is this party's additive summand of (s, t1, t2).
	Summand [authWidth]field.Element
	// SummandTags authenticate Summand under the other party's key, so
	// the counterparty can verify the summand when it is sent over.
	SummandTags [authWidth]mac.Tag
	// Key is this party's MAC key k_i, used to verify the incoming
	// summand and the i-th tag of the reconstructed payload.
	Key mac.Key
}

// OpenMsg is the message a party sends to open its summand toward the
// other party: the paper's ⟨s⟩_{¬i} = (s_{¬i}, t_{¬i}).
type OpenMsg struct {
	Summand [authWidth]field.Element
	Tags    [authWidth]mac.Tag
}

// Open extracts the opening message from a share.
func (a AuthShare) Open() OpenMsg {
	return OpenMsg{Summand: a.Summand, Tags: a.SummandTags}
}

// AuthDeal produces an authenticated 2-of-2 sharing of secret. It plays
// the role of the f′ computation inside ΠOpt-2SFE's first phase: in the
// protocol this dealing happens inside the unfair SFE, so no single party
// ever sees both shares.
func AuthDeal(r io.Reader, secret field.Element) (AuthShare, AuthShare, error) {
	k1, err := mac.GenKey(r)
	if err != nil {
		return AuthShare{}, AuthShare{}, fmt.Errorf("share: auth deal: %w", err)
	}
	k2, err := mac.GenKey(r)
	if err != nil {
		return AuthShare{}, AuthShare{}, fmt.Errorf("share: auth deal: %w", err)
	}
	payload := [authWidth]field.Element{secret, k1.Sign(secret), k2.Sign(secret)}

	// Inline 2-of-2 additive sharing (same randomness stream as
	// AdditiveShare(r, ·, 2)) — the hot path runs once per simulated
	// execution and must not allocate.
	var s1, s2 [authWidth]field.Element
	for j := 0; j < authWidth; j++ {
		a, err := field.Rand(r)
		if err != nil {
			return AuthShare{}, AuthShare{}, fmt.Errorf("share: additive: %w", err)
		}
		s1[j] = a
		s2[j] = payload[j].Sub(a)
	}

	sh1 := AuthShare{Index: 1, Summand: s1, Key: k1}
	sh2 := AuthShare{Index: 2, Summand: s2, Key: k2}
	// Tag each summand under the other party's key so the receiver can
	// verify it during reconstruction.
	for j := 0; j < authWidth; j++ {
		sh1.SummandTags[j] = k2.SignAt(j, s1[j])
		sh2.SummandTags[j] = k1.SignAt(j, s2[j])
	}
	return sh1, sh2, nil
}

// AuthReconstruct runs the reconstruction of Appendix A toward the holder
// of mine, given the opening message from the counterparty. It verifies
// (a) the counterparty's summand tag under this party's key and (b) the
// reconstructed payload's MAC for this party. On any MAC failure it
// returns a typed error; the caller treats that as adversarial behaviour.
func AuthReconstruct(mine AuthShare, other OpenMsg) (field.Element, error) {
	if !mine.Key.VerifyVector(other.Summand[:], other.Tags[:]) {
		return 0, ErrInvalidShare
	}
	var payload [authWidth]field.Element
	for j := 0; j < authWidth; j++ {
		payload[j] = mine.Summand[j].Add(other.Summand[j])
	}
	secret := payload[0]
	// payload[mine.Index] is tag(s, k_{mine.Index}).
	if mine.Index < 1 || mine.Index > 2 {
		return 0, fmt.Errorf("share: auth reconstruct: bad party index %d", mine.Index)
	}
	if !mine.Key.Verify(secret, payload[mine.Index]) {
		return 0, ErrInvalidSecret
	}
	return secret, nil
}
