package share

import (
	"fmt"
	"io"

	"repro/internal/crypto/mac"
	"repro/internal/field"
)

// Authenticated n-of-n additive sharing — the multi-party generalization
// of the Appendix A scheme used by the Beimel-et-al-style multi-party
// partial-fairness protocol: the dealer additively shares the secret and
// tags every summand (bound to its holder index) under a global HMAC key
// handed to all parties, so announced summands are verifiable and any
// single missing or invalid summand blocks reconstruction.

// AuthNShare is party i's share of an authenticated n-of-n sharing.
type AuthNShare struct {
	// Index is the 1-based holder index.
	Index int
	// Summand is the additive summand.
	Summand field.Element
	// Tag authenticates (Index, Summand) under the dealing key.
	Tag []byte
}

// AuthNSharing is the dealer's output.
type AuthNSharing struct {
	Shares []AuthNShare
	Key    mac.ByteKey
}

// AuthDealN produces an authenticated n-of-n sharing of secret.
func AuthDealN(r io.Reader, secret field.Element, n int) (AuthNSharing, error) {
	summands, err := AdditiveShare(r, secret, n)
	if err != nil {
		return AuthNSharing{}, err
	}
	key, err := mac.GenByteKey(r)
	if err != nil {
		return AuthNSharing{}, fmt.Errorf("share: auth deal n: %w", err)
	}
	shares := make([]AuthNShare, n)
	for i, s := range summands {
		tag, err := key.Sign(encodeSummand(i+1, s))
		if err != nil {
			return AuthNSharing{}, fmt.Errorf("share: auth deal n: %w", err)
		}
		shares[i] = AuthNShare{Index: i + 1, Summand: s, Tag: tag}
	}
	return AuthNSharing{Shares: shares, Key: key}, nil
}

// VerifyAuthN reports whether the share's tag is valid under key.
func VerifyAuthN(key mac.ByteKey, s AuthNShare) bool {
	return key.Verify(encodeSummand(s.Index, s.Summand), s.Tag)
}

// AuthReconstructN verifies and recombines announced shares. It requires
// exactly one valid share per index 1..n; a missing or invalid summand
// yields ErrTooFewShares (the abort surface).
func AuthReconstructN(key mac.ByteKey, n int, announced []AuthNShare) (field.Element, error) {
	byIndex := make(map[int]field.Element, n)
	for _, s := range announced {
		if s.Index < 1 || s.Index > n || !VerifyAuthN(key, s) {
			continue
		}
		byIndex[s.Index] = s.Summand
	}
	if len(byIndex) != n {
		return 0, fmt.Errorf("%w: %d of %d valid summands", ErrTooFewShares, len(byIndex), n)
	}
	var acc field.Element
	for _, s := range byIndex {
		acc = acc.Add(s)
	}
	return acc, nil
}

func encodeSummand(index int, s field.Element) []byte {
	return append(field.New(uint64(index)).Bytes(), s.Bytes()...)
}
