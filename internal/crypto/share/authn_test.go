package share

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/field"
)

func TestAuthNDealReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 3, 5} {
		secret := field.New(rng.Uint64())
		sharing, err := AuthDealN(rng, secret, n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AuthReconstructN(sharing.Key, n, sharing.Shares)
		if err != nil {
			t.Fatal(err)
		}
		if got != secret {
			t.Errorf("n=%d: got %v, want %v", n, got, secret)
		}
	}
}

func TestAuthNMissingShareBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sharing, err := AuthDealN(rng, field.New(9), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AuthReconstructN(sharing.Key, 4, sharing.Shares[:3]); !errors.Is(err, ErrTooFewShares) {
		t.Errorf("missing share: %v", err)
	}
}

func TestAuthNTamperedShareRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sharing, err := AuthDealN(rng, field.New(9), 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := sharing.Shares
	bad[0].Summand = bad[0].Summand.Add(field.One)
	if _, err := AuthReconstructN(sharing.Key, 3, bad); !errors.Is(err, ErrTooFewShares) {
		t.Errorf("tampered summand accepted: %v", err)
	}
}

func TestAuthNIndexBinding(t *testing.T) {
	// A valid summand re-announced under a different index must fail.
	rng := rand.New(rand.NewSource(4))
	sharing, err := AuthDealN(rng, field.New(9), 3)
	if err != nil {
		t.Fatal(err)
	}
	forged := sharing.Shares[0]
	forged.Index = 2
	if VerifyAuthN(sharing.Key, forged) {
		t.Error("index-swapped share verified")
	}
	// Out-of-range indices are ignored.
	oor := sharing.Shares[0]
	oor.Index = 9
	announced := append([]AuthNShare{oor}, sharing.Shares[1:]...)
	if _, err := AuthReconstructN(sharing.Key, 3, announced); !errors.Is(err, ErrTooFewShares) {
		t.Errorf("out-of-range index treated as valid: %v", err)
	}
}

func TestAuthNDuplicatesHarmless(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	secret := field.New(77)
	sharing, err := AuthDealN(rng, secret, 3)
	if err != nil {
		t.Fatal(err)
	}
	announced := append(append([]AuthNShare{}, sharing.Shares...), sharing.Shares...)
	got, err := AuthReconstructN(sharing.Key, 3, announced)
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Errorf("got %v, want %v", got, secret)
	}
}

func TestAuthNPrivacy(t *testing.T) {
	// Any n-1 summands look uniform: low bit balance of a fixed summand.
	rng := rand.New(rand.NewSource(6))
	const trials = 800
	ones := 0
	for i := 0; i < trials; i++ {
		sharing, err := AuthDealN(rng, field.Zero, 3)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(sharing.Shares[0].Summand)&1 == 1 {
			ones++
		}
	}
	if ones < trials*40/100 || ones > trials*60/100 {
		t.Errorf("summand biased: %d/%d", ones, trials)
	}
}
