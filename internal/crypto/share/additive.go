// Package share implements the secret-sharing schemes used throughout the
// fairness protocols:
//
//   - plain additive n-of-n sharing (the GMW substrate's wire sharing),
//   - the authenticated additive two-out-of-two scheme of Appendix A
//     (used by ΠOpt-2SFE and the Gordon–Katz ShareGen functionality), and
//   - Shamir t-of-n sharing with authenticated reconstruction (the
//     verifiable d(n/2)e-out-of-n sharing behind Π_GMW^{1/2}, Lemma 17).
package share

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/field"
)

// ErrBadShareCount is returned when a sharing is requested for fewer than
// the scheme's minimum number of parties.
var ErrBadShareCount = errors.New("share: need at least 2 shares")

// AdditiveShare splits secret into n uniformly random summands that add to
// the secret. Any n-1 summands are jointly uniform, so the scheme has
// perfect privacy against any proper subset.
func AdditiveShare(r io.Reader, secret field.Element, n int) ([]field.Element, error) {
	if n < 2 {
		return nil, ErrBadShareCount
	}
	shares := make([]field.Element, n)
	acc := field.Zero
	for i := 0; i < n-1; i++ {
		s, err := field.Rand(r)
		if err != nil {
			return nil, fmt.Errorf("share: additive: %w", err)
		}
		shares[i] = s
		acc = acc.Add(s)
	}
	shares[n-1] = secret.Sub(acc)
	return shares, nil
}

// AdditiveReconstruct recombines the summands.
func AdditiveReconstruct(shares []field.Element) field.Element {
	return field.Sum(shares)
}

// AdditiveShareVector shares each coordinate of a vector independently,
// returning n share vectors.
func AdditiveShareVector(r io.Reader, secret []field.Element, n int) ([][]field.Element, error) {
	if n < 2 {
		return nil, ErrBadShareCount
	}
	out := make([][]field.Element, n)
	for i := range out {
		out[i] = make([]field.Element, len(secret))
	}
	for j, s := range secret {
		shares, err := AdditiveShare(r, s, n)
		if err != nil {
			return nil, err
		}
		for i := range shares {
			out[i][j] = shares[i]
		}
	}
	return out, nil
}

// AdditiveReconstructVector recombines coordinate-wise.
func AdditiveReconstructVector(shares [][]field.Element) ([]field.Element, error) {
	if len(shares) == 0 {
		return nil, errors.New("share: reconstruct vector: no shares")
	}
	width := len(shares[0])
	out := make([]field.Element, width)
	for _, sv := range shares {
		if len(sv) != width {
			return nil, fmt.Errorf("share: reconstruct vector: width mismatch %d vs %d", len(sv), width)
		}
		for j, s := range sv {
			out[j] = out[j].Add(s)
		}
	}
	return out, nil
}
