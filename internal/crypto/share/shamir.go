package share

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/crypto/mac"
	"repro/internal/field"
)

// Shamir t-of-n secret sharing over GF(2^61-1), with an authenticated
// variant used by Π_GMW^{1/2} (Lemma 17): the protocol computes a
// ⌈n/2⌉-out-of-n verifiable secret sharing of the output that is then
// publicly reconstructed; any coalition of < ⌈n/2⌉ parties learns nothing
// and cannot block or corrupt reconstruction by the honest majority.
//
// The "verifiable" aspect is realized with per-dealer MAC tags: the
// (trusted) dealing step tags every party's share under a global key that
// each party also receives, so fake shares announced during public
// reconstruction are detected and ignored — the standard VSS guarantee
// the lemma's argument needs (a (t-1)-adversary cannot confuse honest
// parties into accepting a wrong value).

// ShamirShare is one party's Shamir share.
type ShamirShare struct {
	// X is the evaluation point (party index, 1-based; never zero).
	X field.Element
	// Y is the polynomial evaluation f(X).
	Y field.Element
}

// Errors for Shamir operations.
var (
	ErrThreshold    = errors.New("share: shamir: threshold must satisfy 1 <= t <= n")
	ErrTooFewShares = errors.New("share: shamir: not enough shares to reconstruct")
)

// ShamirDeal shares secret with threshold t among n parties: any t shares
// reconstruct, any t-1 reveal nothing.
func ShamirDeal(r io.Reader, secret field.Element, t, n int) ([]ShamirShare, error) {
	if t < 1 || t > n {
		return nil, ErrThreshold
	}
	coeffs := make([]field.Element, t)
	coeffs[0] = secret
	for i := 1; i < t; i++ {
		c, err := field.Rand(r)
		if err != nil {
			return nil, fmt.Errorf("share: shamir deal: %w", err)
		}
		coeffs[i] = c
	}
	shares := make([]ShamirShare, n)
	for i := 0; i < n; i++ {
		x := field.New(uint64(i + 1))
		shares[i] = ShamirShare{X: x, Y: field.Eval(coeffs, x)}
	}
	return shares, nil
}

// ShamirReconstruct recovers the secret from at least t shares with
// distinct evaluation points. Exactly the first t provided shares are
// used.
func ShamirReconstruct(shares []ShamirShare, t int) (field.Element, error) {
	if len(shares) < t {
		return 0, ErrTooFewShares
	}
	xs := make([]field.Element, t)
	ys := make([]field.Element, t)
	for i := 0; i < t; i++ {
		xs[i] = shares[i].X
		ys[i] = shares[i].Y
	}
	secret, err := field.Interpolate(xs, ys)
	if err != nil {
		return 0, fmt.Errorf("share: shamir reconstruct: %w", err)
	}
	return secret, nil
}

// VerifiableShare is a Shamir share together with an HMAC tag over the
// joint encoding of (X, Y) under the dealer's global verification key, so
// neither coordinate can be substituted or mixed across shares.
type VerifiableShare struct {
	Share ShamirShare
	Tag   []byte
}

// VerifiableSharing is the dealer's output: one verifiable share per
// party plus the global verification key handed to every party.
type VerifiableSharing struct {
	Shares []VerifiableShare
	Key    mac.ByteKey
	T      int
}

// VerifiableDeal produces an authenticated t-of-n Shamir sharing.
func VerifiableDeal(r io.Reader, secret field.Element, t, n int) (VerifiableSharing, error) {
	shares, err := ShamirDeal(r, secret, t, n)
	if err != nil {
		return VerifiableSharing{}, err
	}
	key, err := mac.GenByteKey(r)
	if err != nil {
		return VerifiableSharing{}, fmt.Errorf("share: verifiable deal: %w", err)
	}
	vs := make([]VerifiableShare, n)
	for i, s := range shares {
		tag, err := key.Sign(encodePoint(s))
		if err != nil {
			return VerifiableSharing{}, fmt.Errorf("share: verifiable deal: %w", err)
		}
		vs[i] = VerifiableShare{Share: s, Tag: tag}
	}
	return VerifiableSharing{Shares: vs, Key: key, T: t}, nil
}

// VerifyShare reports whether the share's tag is valid under key.
func VerifyShare(key mac.ByteKey, s VerifiableShare) bool {
	return key.Verify(encodePoint(s.Share), s.Tag)
}

// encodePoint serializes a share point for MAC'ing.
func encodePoint(s ShamirShare) []byte {
	return append(s.X.Bytes(), s.Y.Bytes()...)
}

// VerifiableReconstruct filters announced shares through MAC verification
// and reconstructs from the valid ones. It returns ErrTooFewShares when
// fewer than t announced shares verify — the "coalition of ≥ ⌈n/2⌉ blocks
// reconstruction" case of Lemma 17.
func VerifiableReconstruct(key mac.ByteKey, t int, announced []VerifiableShare) (field.Element, error) {
	valid := make([]ShamirShare, 0, len(announced))
	seen := make(map[field.Element]bool, len(announced))
	for _, s := range announced {
		if !VerifyShare(key, s) || seen[s.Share.X] {
			continue
		}
		seen[s.Share.X] = true
		valid = append(valid, s.Share)
	}
	return ShamirReconstruct(valid, t)
}
