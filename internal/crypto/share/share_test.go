package share

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
)

func TestAdditiveShareReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 3, 5, 10} {
		secret := field.New(rng.Uint64())
		shares, err := AdditiveShare(rng, secret, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(shares) != n {
			t.Fatalf("got %d shares, want %d", len(shares), n)
		}
		if got := AdditiveReconstruct(shares); got != secret {
			t.Errorf("n=%d: reconstruct = %v, want %v", n, got, secret)
		}
	}
}

func TestAdditiveShareQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(s uint64) bool {
		secret := field.New(s)
		shares, err := AdditiveShare(rng, secret, 4)
		return err == nil && AdditiveReconstruct(shares) == secret
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdditiveShareTooFew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := AdditiveShare(rng, field.One, 1); err != ErrBadShareCount {
		t.Errorf("n=1: err = %v, want ErrBadShareCount", err)
	}
}

func TestAdditivePrivacy(t *testing.T) {
	// Missing one summand, the rest are uniform: two sharings of very
	// different secrets should produce statistically similar partial views.
	// We check a necessary condition: a single summand of secret 0 and of
	// secret 1 are both ~uniform (their low bit is ~50/50).
	rng := rand.New(rand.NewSource(4))
	const trials = 2000
	ones := 0
	for i := 0; i < trials; i++ {
		shares, err := AdditiveShare(rng, field.Zero, 2)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(shares[0])&1 == 1 {
			ones++
		}
	}
	if ones < trials*40/100 || ones > trials*60/100 {
		t.Errorf("share low bit biased: %d/%d ones", ones, trials)
	}
}

func TestAdditiveShareVector(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	secret := []field.Element{field.New(1), field.New(2), field.New(3)}
	shares, err := AdditiveShareVector(rng, secret, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AdditiveReconstructVector(shares)
	if err != nil {
		t.Fatal(err)
	}
	for i := range secret {
		if got[i] != secret[i] {
			t.Errorf("coordinate %d: got %v want %v", i, got[i], secret[i])
		}
	}
}

func TestAdditiveShareVectorErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := AdditiveShareVector(rng, []field.Element{1}, 1); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := AdditiveReconstructVector(nil); err == nil {
		t.Error("no shares should fail")
	}
	if _, err := AdditiveReconstructVector([][]field.Element{{1, 2}, {1}}); err == nil {
		t.Error("width mismatch should fail")
	}
}

func TestAuthDealReconstructBothDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	secret := field.New(424242)
	s1, s2, err := AuthDeal(rng, secret)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct toward p1 using p2's opening.
	got1, err := AuthReconstruct(s1, s2.Open())
	if err != nil {
		t.Fatalf("reconstruct toward p1: %v", err)
	}
	if got1 != secret {
		t.Errorf("p1 got %v, want %v", got1, secret)
	}
	// And toward p2.
	got2, err := AuthReconstruct(s2, s1.Open())
	if err != nil {
		t.Fatalf("reconstruct toward p2: %v", err)
	}
	if got2 != secret {
		t.Errorf("p2 got %v, want %v", got2, secret)
	}
}

func TestAuthReconstructQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(s uint64) bool {
		secret := field.New(s)
		s1, s2, err := AuthDeal(rng, secret)
		if err != nil {
			return false
		}
		g1, err1 := AuthReconstruct(s1, s2.Open())
		g2, err2 := AuthReconstruct(s2, s1.Open())
		return err1 == nil && err2 == nil && g1 == secret && g2 == secret
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAuthReconstructRejectsTamperedSummand(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s1, s2, err := AuthDeal(rng, field.New(5))
	if err != nil {
		t.Fatal(err)
	}
	open := s2.Open()
	open.Summand[0] = open.Summand[0].Add(field.One)
	if _, err := AuthReconstruct(s1, open); !errors.Is(err, ErrInvalidShare) {
		t.Errorf("tampered summand: err = %v, want ErrInvalidShare", err)
	}
}

func TestAuthReconstructRejectsTamperedTag(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s1, s2, err := AuthDeal(rng, field.New(5))
	if err != nil {
		t.Fatal(err)
	}
	open := s2.Open()
	open.Tags[1] = open.Tags[1].Add(field.One)
	if _, err := AuthReconstruct(s1, open); !errors.Is(err, ErrInvalidShare) {
		t.Errorf("tampered tag: err = %v, want ErrInvalidShare", err)
	}
}

func TestAuthReconstructRejectsForeignShare(t *testing.T) {
	// A share from a different dealing (different keys) must be rejected.
	rng := rand.New(rand.NewSource(11))
	s1, _, err := AuthDeal(rng, field.New(5))
	if err != nil {
		t.Fatal(err)
	}
	_, other2, err := AuthDeal(rng, field.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AuthReconstruct(s1, other2.Open()); err == nil {
		t.Error("foreign share accepted")
	}
}

func TestAuthReconstructBadIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s1, s2, err := AuthDeal(rng, field.New(5))
	if err != nil {
		t.Fatal(err)
	}
	s1.Index = 3
	if _, err := AuthReconstruct(s1, s2.Open()); err == nil {
		t.Error("bad index accepted")
	}
}

func TestAuthSharePrivacy(t *testing.T) {
	// A single share alone must not determine the secret: share of 0 and
	// share of 1 should have uniform-looking summands.
	rng := rand.New(rand.NewSource(13))
	const trials = 1000
	ones := 0
	for i := 0; i < trials; i++ {
		s1, _, err := AuthDeal(rng, field.Zero)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(s1.Summand[0])&1 == 1 {
			ones++
		}
	}
	if ones < trials*40/100 || ones > trials*60/100 {
		t.Errorf("auth share summand biased: %d/%d", ones, trials)
	}
}

func TestShamirDealReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, tc := range []struct{ tt, n int }{{1, 1}, {2, 3}, {3, 5}, {5, 9}} {
		secret := field.New(rng.Uint64())
		shares, err := ShamirDeal(rng, secret, tc.tt, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ShamirReconstruct(shares, tc.tt)
		if err != nil {
			t.Fatal(err)
		}
		if got != secret {
			t.Errorf("t=%d n=%d: got %v want %v", tc.tt, tc.n, got, secret)
		}
		// Any t-subset works: try the last t shares.
		got2, err := ShamirReconstruct(shares[tc.n-tc.tt:], tc.tt)
		if err != nil {
			t.Fatal(err)
		}
		if got2 != secret {
			t.Errorf("t=%d n=%d tail subset: got %v want %v", tc.tt, tc.n, got2, secret)
		}
	}
}

func TestShamirThresholdErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	if _, err := ShamirDeal(rng, field.One, 0, 3); err != ErrThreshold {
		t.Errorf("t=0: %v, want ErrThreshold", err)
	}
	if _, err := ShamirDeal(rng, field.One, 4, 3); err != ErrThreshold {
		t.Errorf("t>n: %v, want ErrThreshold", err)
	}
	if _, err := ShamirReconstruct([]ShamirShare{{X: 1, Y: 1}}, 2); err != ErrTooFewShares {
		t.Errorf("too few: %v, want ErrTooFewShares", err)
	}
}

func TestShamirPrivacyBelowThreshold(t *testing.T) {
	// t-1 shares of secret 0 vs secret 12345: distribution of a fixed
	// share should be uniform either way; check low-bit balance.
	rng := rand.New(rand.NewSource(16))
	const trials = 1000
	for _, secret := range []field.Element{field.Zero, field.New(12345)} {
		ones := 0
		for i := 0; i < trials; i++ {
			shares, err := ShamirDeal(rng, secret, 3, 5)
			if err != nil {
				t.Fatal(err)
			}
			if uint64(shares[0].Y)&1 == 1 {
				ones++
			}
		}
		if ones < trials*40/100 || ones > trials*60/100 {
			t.Errorf("secret %v: share low-bit biased %d/%d", secret, ones, trials)
		}
	}
}

func TestVerifiableDealReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	secret := field.New(777)
	vs, err := VerifiableDeal(rng, secret, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := VerifiableReconstruct(vs.Key, vs.T, vs.Shares)
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Errorf("got %v, want %v", got, secret)
	}
}

func TestVerifiableReconstructIgnoresFakeShares(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	secret := field.New(777)
	vs, err := VerifiableDeal(rng, secret, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Adversary announces two fake shares first; they must be filtered.
	fake := VerifiableShare{Share: ShamirShare{X: 1, Y: 999}, Tag: bytes.Repeat([]byte{1}, 32)}
	announced := append([]VerifiableShare{fake, fake}, vs.Shares...)
	got, err := VerifiableReconstruct(vs.Key, vs.T, announced)
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Errorf("got %v, want %v (fake shares corrupted reconstruction)", got, secret)
	}
}

func TestVerifiableReconstructRejectsMixedCoordinates(t *testing.T) {
	// A share assembled from coordinates of two different valid shares
	// must fail verification (joint binding).
	rng := rand.New(rand.NewSource(19))
	vs, err := VerifiableDeal(rng, field.New(5), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	mixed := VerifiableShare{
		Share: ShamirShare{X: vs.Shares[0].Share.X, Y: vs.Shares[1].Share.Y},
		Tag:   vs.Shares[0].Tag,
	}
	if VerifyShare(vs.Key, mixed) {
		t.Error("mixed-coordinate share verified")
	}
}

func TestVerifiableReconstructTooFewValid(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	vs, err := VerifiableDeal(rng, field.New(5), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Only 2 valid shares announced (< t = 3): reconstruction blocked.
	if _, err := VerifiableReconstruct(vs.Key, vs.T, vs.Shares[:2]); !errors.Is(err, ErrTooFewShares) {
		t.Errorf("err = %v, want ErrTooFewShares", err)
	}
}

func TestVerifiableReconstructDeduplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	secret := field.New(99)
	vs, err := VerifiableDeal(rng, secret, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Same share announced twice does not count as two points.
	announced := []VerifiableShare{vs.Shares[0], vs.Shares[0]}
	if _, err := VerifiableReconstruct(vs.Key, vs.T, announced); !errors.Is(err, ErrTooFewShares) {
		t.Errorf("duplicate shares treated as distinct: err = %v", err)
	}
	announced = append(announced, vs.Shares[1])
	got, err := VerifiableReconstruct(vs.Key, vs.T, announced)
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Errorf("got %v, want %v", got, secret)
	}
}

func BenchmarkAuthDeal(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := AuthDeal(rng, field.New(42)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShamirDeal(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ShamirDeal(rng, field.New(42), 5, 9); err != nil {
			b.Fatal(err)
		}
	}
}
