// Package commitment implements the hash-based commitment scheme used by
// the contract-signing protocols Π1 and Π2 of the Introduction and by the
// coin-tossing subprotocol of Π2 (Blum coin flipping).
//
// Commit(m; r) = SHA-256(r ‖ m) with a 32-byte random opening r. Hiding
// holds in the random-oracle model (r has full entropy); binding follows
// from collision resistance.
package commitment

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
)

// openingLen is the byte length of the random opening value.
const openingLen = 32

// Commitment is the public commitment string.
type Commitment []byte

// Opening is the decommitment: the randomness and the committed message.
type Opening struct {
	Randomness []byte
	Message    []byte
}

// Commit produces a commitment to msg using randomness drawn from r.
func Commit(r io.Reader, msg []byte) (Commitment, Opening, error) {
	rnd := make([]byte, openingLen)
	if _, err := io.ReadFull(r, rnd); err != nil {
		return nil, Opening{}, fmt.Errorf("commitment: draw randomness: %w", err)
	}
	msgCopy := append([]byte(nil), msg...)
	return digest(rnd, msgCopy), Opening{Randomness: rnd, Message: msgCopy}, nil
}

// Verify reports whether the opening matches the commitment.
func Verify(c Commitment, o Opening) bool {
	if len(o.Randomness) != openingLen {
		return false
	}
	return bytes.Equal(c, digest(o.Randomness, o.Message))
}

func digest(rnd, msg []byte) Commitment {
	h := sha256.New()
	h.Write(rnd)
	h.Write(msg)
	return h.Sum(nil)
}
