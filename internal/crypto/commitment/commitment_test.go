package commitment

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCommitVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	msg := []byte("signed contract v1")
	c, o, err := Commit(rng, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(c, o) {
		t.Error("honest opening rejected")
	}
}

func TestCommitVerifyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(msg []byte) bool {
		c, o, err := Commit(rng, msg)
		return err == nil && Verify(c, o)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBindingMessageChange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, o, err := Commit(rng, []byte("original"))
	if err != nil {
		t.Fatal(err)
	}
	o.Message = []byte("forged")
	if Verify(c, o) {
		t.Error("opening with different message accepted")
	}
}

func TestBindingRandomnessChange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, o, err := Commit(rng, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	o.Randomness = append([]byte(nil), o.Randomness...)
	o.Randomness[0] ^= 1
	if Verify(c, o) {
		t.Error("opening with different randomness accepted")
	}
}

func TestVerifyBadOpeningLength(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, o, err := Commit(rng, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	o.Randomness = o.Randomness[:16]
	if Verify(c, o) {
		t.Error("short opening accepted")
	}
}

func TestHidingDistinctMessagesDistinctCommitments(t *testing.T) {
	// Fresh randomness means even equal messages yield distinct commitments.
	rng := rand.New(rand.NewSource(6))
	c1, _, err := Commit(rng, []byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := Commit(rng, []byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(c1, c2) {
		t.Error("two commitments to same message equal — randomness not used")
	}
}

func TestCommitCopiesMessage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	msg := []byte("mutate me")
	c, o, err := Commit(rng, msg)
	if err != nil {
		t.Fatal(err)
	}
	msg[0] = 'X' // caller mutates their buffer
	if !Verify(c, o) {
		t.Error("opening invalidated by caller mutation — message not copied")
	}
}

func TestCommitEmptyMessage(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c, o, err := Commit(rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(c, o) {
		t.Error("empty-message commitment rejected")
	}
}

func TestCommitRandomnessError(t *testing.T) {
	if _, _, err := Commit(bytes.NewReader(nil), []byte("m")); err == nil {
		t.Error("Commit with empty randomness source should fail")
	}
}

func BenchmarkCommit(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	msg := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Commit(rng, msg); err != nil {
			b.Fatal(err)
		}
	}
}
