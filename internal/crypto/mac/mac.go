// Package mac implements the message authentication codes used by the
// authenticated secret-sharing scheme of Appendix A.
//
// Two schemes are provided:
//
//   - An information-theoretic one-time MAC over GF(2^61-1): for key
//     (a, b), Tag(m) = a·m + b. One-time unforgeability is unconditional:
//     after seeing a single (m, t) pair, every candidate tag for m' ≠ m is
//     equally likely, so a forger succeeds with probability 1/|F|.
//
//   - An HMAC-SHA256 byte-message MAC for authenticating serialized
//     protocol payloads (e.g. the signed-output broadcast of ΠOpt-nSFE).
//
// The paper's notation tag(x, k) maps to Tag(k, x) here.
package mac

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"

	"repro/internal/field"
)

// Key is a one-time MAC key (a, b) over the field.
type Key struct {
	A, B field.Element
}

// Tag is a one-time MAC tag, a single field element.
type Tag = field.Element

// ErrShortKey is returned when a byte-MAC key is too short.
var ErrShortKey = errors.New("mac: key must be at least 16 bytes")

// GenKey draws a uniform one-time MAC key from r.
func GenKey(r io.Reader) (Key, error) {
	a, err := field.Rand(r)
	if err != nil {
		return Key{}, fmt.Errorf("mac: gen key: %w", err)
	}
	b, err := field.Rand(r)
	if err != nil {
		return Key{}, fmt.Errorf("mac: gen key: %w", err)
	}
	return Key{A: a, B: b}, nil
}

// Sign computes the one-time tag a·m + b.
func (k Key) Sign(m field.Element) Tag {
	return k.A.Mul(m).Add(k.B)
}

// Verify reports whether t is the correct tag for m under k.
func (k Key) Verify(m field.Element, t Tag) bool {
	return k.Sign(m) == t
}

// SignVector authenticates each element of a message vector independently,
// deriving per-position keys (a, b+i·a) from the base key so a single Key
// covers a short vector. Positions are bound to indices: swapping two
// elements invalidates both tags.
func (k Key) SignVector(ms []field.Element) []Tag {
	tags := make([]Tag, len(ms))
	for i, m := range ms {
		tags[i] = k.posKey(i).Sign(m)
	}
	return tags
}

// SignAt signs position i of a vector under the position-i derived key —
// one element of SignVector's result, without allocating the tag slice.
func (k Key) SignAt(i int, m field.Element) Tag {
	return k.posKey(i).Sign(m)
}

// VerifyVector checks a full vector signature.
func (k Key) VerifyVector(ms []field.Element, tags []Tag) bool {
	if len(ms) != len(tags) {
		return false
	}
	for i, m := range ms {
		if !k.posKey(i).Verify(m, tags[i]) {
			return false
		}
	}
	return true
}

// posKey derives the position-i key (a, b + i·a²); mixing in a² keeps the
// derived pad independent of the tag structure a·m + b.
func (k Key) posKey(i int) Key {
	shift := k.A.Mul(k.A).Mul(field.New(uint64(i)))
	return Key{A: k.A, B: k.B.Add(shift)}
}

// ByteKey is a key for the HMAC-SHA256 byte-message MAC.
type ByteKey []byte

// GenByteKey draws a 32-byte HMAC key from r.
func GenByteKey(r io.Reader) (ByteKey, error) {
	k := make(ByteKey, 32)
	if _, err := io.ReadFull(r, k); err != nil {
		return nil, fmt.Errorf("mac: gen byte key: %w", err)
	}
	return k, nil
}

// Sign computes HMAC-SHA256(k, m).
func (k ByteKey) Sign(m []byte) ([]byte, error) {
	if len(k) < 16 {
		return nil, ErrShortKey
	}
	h := hmac.New(sha256.New, k)
	h.Write(m)
	return h.Sum(nil), nil
}

// Verify checks an HMAC tag in constant time.
func (k ByteKey) Verify(m, tag []byte) bool {
	want, err := k.Sign(m)
	if err != nil {
		return false
	}
	return subtle.ConstantTimeCompare(want, tag) == 1
}
