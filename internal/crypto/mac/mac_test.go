package mac

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
)

func TestSignVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k, err := GenKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	m := field.New(12345)
	tag := k.Sign(m)
	if !k.Verify(m, tag) {
		t.Error("valid tag rejected")
	}
	if k.Verify(m.Add(field.One), tag) {
		t.Error("tag accepted for wrong message")
	}
	if k.Verify(m, tag.Add(field.One)) {
		t.Error("tampered tag accepted")
	}
}

func TestSignVerifyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k, err := GenKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	f := func(m uint64) bool {
		msg := field.New(m)
		return k.Verify(msg, k.Sign(msg))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForgeryHard(t *testing.T) {
	// After seeing one (m, tag) pair, guessing a valid tag for m' should
	// essentially never succeed; try many random forgeries.
	rng := rand.New(rand.NewSource(3))
	k, err := GenKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	m := field.New(42)
	_ = k.Sign(m)
	forgeries := 0
	for i := 0; i < 10000; i++ {
		m2, err := field.Rand(rng)
		if err != nil {
			t.Fatal(err)
		}
		guess, err := field.Rand(rng)
		if err != nil {
			t.Fatal(err)
		}
		if m2 != m && k.Verify(m2, guess) {
			forgeries++
		}
	}
	if forgeries > 0 {
		t.Errorf("random forgery succeeded %d times", forgeries)
	}
}

func TestDifferentKeysDisagree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k1, err := GenKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := GenKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	m := field.New(7)
	if k1.Sign(m) == k2.Sign(m) {
		t.Error("two random keys produced equal tag (astronomically unlikely)")
	}
}

func TestGenKeyError(t *testing.T) {
	if _, err := GenKey(bytes.NewReader(nil)); err == nil {
		t.Error("GenKey on empty reader should fail")
	}
}

func TestSignVector(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	k, err := GenKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	ms := []field.Element{field.New(1), field.New(2), field.New(3)}
	tags := k.SignVector(ms)
	if !k.VerifyVector(ms, tags) {
		t.Error("valid vector rejected")
	}
	// Mutating any element invalidates.
	for i := range ms {
		bad := append([]field.Element(nil), ms...)
		bad[i] = bad[i].Add(field.One)
		if k.VerifyVector(bad, tags) {
			t.Errorf("mutated element %d accepted", i)
		}
	}
	// Swapping two elements invalidates (position binding).
	swapped := []field.Element{ms[1], ms[0], ms[2]}
	if k.VerifyVector(swapped, tags) {
		t.Error("swapped vector accepted")
	}
	// Length mismatch rejects.
	if k.VerifyVector(ms[:2], tags) {
		t.Error("short vector accepted")
	}
	if k.VerifyVector(ms, tags[:2]) {
		t.Error("short tags accepted")
	}
}

func TestSignVectorEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	k, err := GenKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	if !k.VerifyVector(nil, k.SignVector(nil)) {
		t.Error("empty vector should verify")
	}
}

func TestByteMAC(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k, err := GenByteKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	m := []byte("the signed contract")
	tag, err := k.Sign(m)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Verify(m, tag) {
		t.Error("valid byte MAC rejected")
	}
	if k.Verify([]byte("a different message"), tag) {
		t.Error("byte MAC accepted wrong message")
	}
	tag[0] ^= 0xff
	if k.Verify(m, tag) {
		t.Error("tampered byte MAC accepted")
	}
}

func TestByteMACShortKey(t *testing.T) {
	k := ByteKey("short")
	if _, err := k.Sign([]byte("m")); err != ErrShortKey {
		t.Errorf("Sign with short key: err = %v, want ErrShortKey", err)
	}
	if k.Verify([]byte("m"), []byte("t")) {
		t.Error("Verify with short key should fail")
	}
}

func TestGenByteKeyError(t *testing.T) {
	if _, err := GenByteKey(bytes.NewReader(nil)); err == nil {
		t.Error("GenByteKey on empty reader should fail")
	}
}

func BenchmarkSign(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	k, err := GenKey(rng)
	if err != nil {
		b.Fatal(err)
	}
	m := field.New(12345)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = k.Sign(m)
	}
}
