// Package sig wraps an existentially unforgeable digital signature scheme
// as the triple (Gen, Sign, Ver) used by protocol ΠOpt-nSFE (Appendix B):
// the functionality F_priv-sfe^⊥ signs the output y so that in the
// broadcast round every party can recognize the authentic output while a
// corrupted broadcaster cannot substitute a different value.
//
// The implementation is Ed25519 from the standard library [GMR88-style
// EUF-CMA security is assumed as in the paper].
package sig

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
)

// VerificationKey is the public verification key (paper: vk).
type VerificationKey = ed25519.PublicKey

// SigningKey is the private signing key (paper: sk).
type SigningKey = ed25519.PrivateKey

// Signature is a detached signature (paper: σ).
type Signature = []byte

// ErrBadKey is returned when a key has the wrong length.
var ErrBadKey = errors.New("sig: malformed key")

// Gen generates a fresh key pair from the randomness source r.
func Gen(r io.Reader) (VerificationKey, SigningKey, error) {
	vk, sk, err := ed25519.GenerateKey(r)
	if err != nil {
		return nil, nil, fmt.Errorf("sig: generate: %w", err)
	}
	return vk, sk, nil
}

// Sign produces a signature on msg under sk.
func Sign(sk SigningKey, msg []byte) (Signature, error) {
	if len(sk) != ed25519.PrivateKeySize {
		return nil, ErrBadKey
	}
	return ed25519.Sign(sk, msg), nil
}

// Ver reports whether σ is a valid signature on msg under vk.
func Ver(vk VerificationKey, msg []byte, sigma Signature) bool {
	if len(vk) != ed25519.PublicKeySize {
		return false
	}
	return ed25519.Verify(vk, msg, sigma)
}
