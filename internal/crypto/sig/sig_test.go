package sig

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSignVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vk, sk, err := Gen(rng)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("output y of the function evaluation")
	sigma, err := Sign(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !Ver(vk, msg, sigma) {
		t.Error("valid signature rejected")
	}
}

func TestVerifyWrongMessage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vk, sk, err := Gen(rng)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := Sign(sk, []byte("real output"))
	if err != nil {
		t.Fatal(err)
	}
	if Ver(vk, []byte("forged output"), sigma) {
		t.Error("signature accepted for different message")
	}
}

func TestVerifyTamperedSignature(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vk, sk, err := Gen(rng)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	sigma, err := Sign(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	sigma[0] ^= 1
	if Ver(vk, msg, sigma) {
		t.Error("tampered signature accepted")
	}
}

func TestVerifyWrongKey(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	_, sk, err := Gen(rng)
	if err != nil {
		t.Fatal(err)
	}
	vk2, _, err := Gen(rng)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	sigma, err := Sign(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	if Ver(vk2, msg, sigma) {
		t.Error("signature accepted under unrelated key")
	}
}

func TestBadKeys(t *testing.T) {
	if _, err := Sign(SigningKey("short"), []byte("m")); err != ErrBadKey {
		t.Errorf("Sign with short key: %v, want ErrBadKey", err)
	}
	if Ver(VerificationKey("short"), []byte("m"), []byte("sig")) {
		t.Error("Ver with short key should be false")
	}
}

func TestDeterministicKeyGen(t *testing.T) {
	vk1, _, err := Gen(rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	vk2, _, err := Gen(rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vk1, vk2) {
		t.Error("same seed should give same key (reproducible experiments)")
	}
}

func BenchmarkSign(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	_, sk, err := Gen(rng)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Sign(sk, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	vk, sk, err := Gen(rng)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 64)
	sigma, err := Sign(sk, msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Ver(vk, msg, sigma) {
			b.Fatal("verify failed")
		}
	}
}
