package ot

import (
	"fmt"
	"io"
	"math/big"
)

// NaorPinkas is the DDH-based 1-of-N oblivious-transfer engine. The
// four-move session API (Setup → Choose → Respond → Finish) exposes the
// actual protocol messages; Transfer wires the moves together for
// in-memory use.
type NaorPinkas struct{}

var _ Engine = NaorPinkas{}

// SetupMsg is the sender's first message: N-1 random group elements
// C_1..C_{N-1} (one per non-zero choice index).
type SetupMsg struct {
	Constants []*big.Int
}

// ChoiceMsg is the receiver's message: the single public key PK_0. The
// sender derives PK_i = C_i / PK_0; the receiver knows the discrete log
// of exactly PK_choice.
type ChoiceMsg struct {
	PK0 *big.Int
}

// CipherMsg is the sender's final message: hashed-ElGamal ciphertexts of
// every message, sharing one ephemeral key g^r.
type CipherMsg struct {
	Ephemeral *big.Int
	Bodies    [][]byte
}

// npSender holds sender-side session state.
type npSender struct {
	gr    group
	msgs  [][]byte
	setup SetupMsg
}

// npReceiver holds receiver-side session state.
type npReceiver struct {
	gr     group
	choice int
	k      *big.Int
}

// NewSenderSession starts an OT as the sender of msgs.
func (NaorPinkas) NewSenderSession(rng io.Reader, msgs [][]byte) (*npSender, SetupMsg, error) {
	if err := validate(msgs, 0); err != nil {
		return nil, SetupMsg{}, err
	}
	gr := defaultGroup
	consts := make([]*big.Int, len(msgs)-1)
	for i := range consts {
		c, err := gr.randElement(rng)
		if err != nil {
			return nil, SetupMsg{}, err
		}
		consts[i] = c
	}
	s := &npSender{gr: gr, msgs: msgs, setup: SetupMsg{Constants: consts}}
	return s, s.setup, nil
}

// NewReceiverSession processes the setup message and produces the
// receiver's public key for the given choice.
func (NaorPinkas) NewReceiverSession(rng io.Reader, setup SetupMsg, n, choice int) (*npReceiver, ChoiceMsg, error) {
	if choice < 0 || choice >= n {
		return nil, ChoiceMsg{}, ErrBadChoice
	}
	if len(setup.Constants) != n-1 {
		return nil, ChoiceMsg{}, fmt.Errorf("%w: %d constants for n=%d", ErrMalformed, len(setup.Constants), n)
	}
	gr := defaultGroup
	k, err := gr.randScalar(rng)
	if err != nil {
		return nil, ChoiceMsg{}, err
	}
	pkc := new(big.Int).Exp(gr.g, k, gr.p) // PK_choice = g^k
	var pk0 *big.Int
	if choice == 0 {
		pk0 = pkc
	} else {
		// PK_0 = C_choice / PK_choice.
		inv := new(big.Int).ModInverse(pkc, gr.p)
		pk0 = new(big.Int).Mul(setup.Constants[choice-1], inv)
		pk0.Mod(pk0, gr.p)
	}
	return &npReceiver{gr: gr, choice: choice, k: k}, ChoiceMsg{PK0: pk0}, nil
}

// Respond encrypts every message under its derived public key.
func (s *npSender) Respond(rng io.Reader, cm ChoiceMsg) (CipherMsg, error) {
	if cm.PK0 == nil || cm.PK0.Sign() <= 0 || cm.PK0.Cmp(s.gr.p) >= 0 {
		return CipherMsg{}, ErrMalformed
	}
	r, err := s.gr.randScalar(rng)
	if err != nil {
		return CipherMsg{}, err
	}
	eph := new(big.Int).Exp(s.gr.g, r, s.gr.p)
	bodies := make([][]byte, len(s.msgs))
	pk := new(big.Int).Set(cm.PK0)
	for i, m := range s.msgs {
		if i > 0 {
			// PK_i = C_i / PK_0.
			inv := new(big.Int).ModInverse(cm.PK0, s.gr.p)
			pk = new(big.Int).Mul(s.setup.Constants[i-1], inv)
			pk.Mod(pk, s.gr.p)
		}
		shared := new(big.Int).Exp(pk, r, s.gr.p)
		body := append([]byte(nil), m...)
		xorInto(body, kdf(shared, i, len(body)))
		bodies[i] = body
	}
	return CipherMsg{Ephemeral: eph, Bodies: bodies}, nil
}

// Finish decrypts the chosen ciphertext.
func (r *npReceiver) Finish(cm CipherMsg) ([]byte, error) {
	if cm.Ephemeral == nil || r.choice >= len(cm.Bodies) {
		return nil, ErrMalformed
	}
	shared := new(big.Int).Exp(cm.Ephemeral, r.k, r.gr.p)
	body := append([]byte(nil), cm.Bodies[r.choice]...)
	xorInto(body, kdf(shared, r.choice, len(body)))
	return body, nil
}

// Transfer runs the whole session in memory.
func (np NaorPinkas) Transfer(rng io.Reader, msgs [][]byte, choice int) ([]byte, error) {
	if err := validate(msgs, choice); err != nil {
		return nil, err
	}
	sender, setup, err := np.NewSenderSession(rng, msgs)
	if err != nil {
		return nil, err
	}
	receiver, choiceMsg, err := np.NewReceiverSession(rng, setup, len(msgs), choice)
	if err != nil {
		return nil, err
	}
	cipher, err := sender.Respond(rng, choiceMsg)
	if err != nil {
		return nil, err
	}
	return receiver.Finish(cipher)
}

// Dealer is a correlated-randomness OT engine: a trusted dealer hands the
// receiver exactly its chosen message. It makes the OT hybrid explicit —
// the fairness experiments measure attacks on output delivery, not on the
// OT sub-protocol — and is orders of magnitude faster than NaorPinkas.
type Dealer struct{}

var _ Engine = Dealer{}

// Transfer returns a copy of msgs[choice].
func (Dealer) Transfer(_ io.Reader, msgs [][]byte, choice int) ([]byte, error) {
	if err := validate(msgs, choice); err != nil {
		return nil, err
	}
	return append([]byte(nil), msgs[choice]...), nil
}
