package ot

import (
	"bytes"
	"errors"
	"math/big"
	"math/rand"
	"testing"
)

func engines() map[string]Engine {
	return map[string]Engine{
		"NaorPinkas": NaorPinkas{},
		"Dealer":     Dealer{},
	}
}

func TestTransferAllChoices(t *testing.T) {
	msgs := [][]byte{[]byte("msg-zero"), []byte("msg-one!"), []byte("msg-two."), []byte("msg-thre")}
	for name, e := range engines() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			for c := range msgs {
				got, err := e.Transfer(rng, msgs, c)
				if err != nil {
					t.Fatalf("choice %d: %v", c, err)
				}
				if !bytes.Equal(got, msgs[c]) {
					t.Errorf("choice %d: got %q, want %q", c, got, msgs[c])
				}
			}
		})
	}
}

func TestTransfer1of2(t *testing.T) {
	msgs := [][]byte{{0x00}, {0x01}}
	for name, e := range engines() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(2))
			for c := 0; c < 2; c++ {
				got, err := e.Transfer(rng, msgs, c)
				if err != nil {
					t.Fatal(err)
				}
				if got[0] != byte(c) {
					t.Errorf("choice %d got %v", c, got)
				}
			}
		})
	}
}

func TestTransferValidation(t *testing.T) {
	for name, e := range engines() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			if _, err := e.Transfer(rng, [][]byte{{1}}, 0); !errors.Is(err, ErrBadMsgCount) {
				t.Errorf("1 message: %v, want ErrBadMsgCount", err)
			}
			if _, err := e.Transfer(rng, [][]byte{{1}, {2, 3}}, 0); !errors.Is(err, ErrBadLengths) {
				t.Errorf("ragged: %v, want ErrBadLengths", err)
			}
			if _, err := e.Transfer(rng, [][]byte{{1}, {2}}, 2); !errors.Is(err, ErrBadChoice) {
				t.Errorf("choice out of range: %v, want ErrBadChoice", err)
			}
			if _, err := e.Transfer(rng, [][]byte{{1}, {2}}, -1); !errors.Is(err, ErrBadChoice) {
				t.Errorf("negative choice: %v, want ErrBadChoice", err)
			}
		})
	}
}

func TestDealerCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	msgs := [][]byte{{1}, {2}}
	got, err := Dealer{}.Transfer(rng, msgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 99
	if msgs[0][0] != 1 {
		t.Error("Dealer returned aliased message buffer")
	}
}

func TestNaorPinkasWrongChoiceGetsGarbage(t *testing.T) {
	// A receiver that decrypts a NON-chosen slot must not recover the
	// plaintext (it only knows the discrete log of its chosen key).
	np := NaorPinkas{}
	rng := rand.New(rand.NewSource(5))
	msgs := [][]byte{[]byte("secret-0"), []byte("secret-1")}
	sender, setup, err := np.NewSenderSession(rng, msgs)
	if err != nil {
		t.Fatal(err)
	}
	receiver, choiceMsg, err := np.NewReceiverSession(rng, setup, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	cipher, err := sender.Respond(rng, choiceMsg)
	if err != nil {
		t.Fatal(err)
	}
	// Decrypt the chosen slot correctly.
	got, err := receiver.Finish(cipher)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msgs[0]) {
		t.Fatalf("chosen slot decryption failed: %q", got)
	}
	// Forcibly decrypt the other slot with the same key material.
	receiver.choice = 1
	stolen, err := receiver.Finish(cipher)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(stolen, msgs[1]) {
		t.Error("receiver recovered the non-chosen message")
	}
}

func TestNaorPinkasSenderSeesUniformKey(t *testing.T) {
	// The PK0 sent for choice 0 and choice 1 must both be valid group
	// elements; the sender cannot tell them apart structurally.
	np := NaorPinkas{}
	rng := rand.New(rand.NewSource(6))
	msgs := [][]byte{{1}, {2}}
	_, setup, err := np.NewSenderSession(rng, msgs)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		_, cm, err := np.NewReceiverSession(rng, setup, 2, c)
		if err != nil {
			t.Fatal(err)
		}
		if cm.PK0 == nil || cm.PK0.Sign() <= 0 || cm.PK0.Cmp(defaultGroup.p) >= 0 {
			t.Errorf("choice %d: PK0 not a valid group element", c)
		}
	}
}

func TestNaorPinkasSessionValidation(t *testing.T) {
	np := NaorPinkas{}
	rng := rand.New(rand.NewSource(7))
	msgs := [][]byte{{1}, {2}}
	sender, setup, err := np.NewSenderSession(rng, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := np.NewReceiverSession(rng, setup, 2, 5); !errors.Is(err, ErrBadChoice) {
		t.Errorf("bad choice: %v", err)
	}
	if _, _, err := np.NewReceiverSession(rng, SetupMsg{}, 2, 0); !errors.Is(err, ErrMalformed) {
		t.Errorf("bad setup: %v", err)
	}
	if _, err := sender.Respond(rng, ChoiceMsg{}); !errors.Is(err, ErrMalformed) {
		t.Errorf("nil PK: %v", err)
	}
	if _, err := sender.Respond(rng, ChoiceMsg{PK0: big.NewInt(0)}); !errors.Is(err, ErrMalformed) {
		t.Errorf("zero PK: %v", err)
	}
	receiver, _, err := np.NewReceiverSession(rng, setup, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := receiver.Finish(CipherMsg{}); !errors.Is(err, ErrMalformed) {
		t.Errorf("empty cipher: %v", err)
	}
}

func TestKDFDomainSeparation(t *testing.T) {
	e := big.NewInt(123456789)
	if bytes.Equal(kdf(e, 0, 16), kdf(e, 1, 16)) {
		t.Error("kdf identical across indices")
	}
	long := kdf(e, 0, 100)
	if len(long) != 100 {
		t.Errorf("kdf length %d, want 100", len(long))
	}
	// Prefix stability: first 32 bytes of a longer pad equal the short pad.
	if !bytes.Equal(kdf(e, 0, 32), long[:32]) {
		t.Error("kdf not prefix-stable")
	}
}

func TestGroupScalarRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		k, err := defaultGroup.randScalar(rng)
		if err != nil {
			t.Fatal(err)
		}
		if k.Sign() <= 0 || k.Cmp(defaultGroup.q) >= 0 {
			t.Fatalf("scalar %v out of range (0, q)", k)
		}
	}
}

func TestGroupElementInSubgroup(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e, err := defaultGroup.randElement(rng)
	if err != nil {
		t.Fatal(err)
	}
	// Element of the order-q subgroup: e^q == 1.
	one := new(big.Int).Exp(e, defaultGroup.q, defaultGroup.p)
	if one.Cmp(big.NewInt(1)) != 0 {
		t.Error("randElement produced element outside order-q subgroup")
	}
}

func BenchmarkNaorPinkasTransfer(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	msgs := [][]byte{make([]byte, 16), make([]byte, 16), make([]byte, 16), make([]byte, 16)}
	np := NaorPinkas{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := np.Transfer(rng, msgs, i%4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDealerTransfer(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	msgs := [][]byte{make([]byte, 16), make([]byte, 16)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (Dealer{}).Transfer(rng, msgs, i%2); err != nil {
			b.Fatal(err)
		}
	}
}
