// Package ot implements 1-out-of-N oblivious transfer, the interactive
// primitive behind the GMW substrate's AND gates.
//
// Two interchangeable engines are provided:
//
//   - NaorPinkas: the classic DDH-based 1-of-N OT of Naor and Pinkas over
//     the RFC 3526 1536-bit MODP group, with hashed-ElGamal encryption.
//     The receiver knows the discrete log of exactly one public key; under
//     CDH it learns only its chosen message, and the sender, who sees a
//     single uniformly distributed public key, learns nothing about the
//     choice.
//
//   - Dealer: a trusted-dealer (correlated-randomness) OT used by the
//     Monte-Carlo fairness experiments, where the OT sub-protocol is a
//     hybrid (its security is not what the experiments measure) and raw
//     speed matters.
//
// Both engines expose the same four-move session API so the GMW layer is
// oblivious (pun intended) to which one runs underneath.
package ot

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Errors shared by the engines.
var (
	ErrBadChoice   = errors.New("ot: choice index out of range")
	ErrBadMsgCount = errors.New("ot: need at least 2 messages")
	ErrBadLengths  = errors.New("ot: all messages must have equal length")
	ErrMalformed   = errors.New("ot: malformed protocol message")
)

// Engine abstracts an OT implementation as a single blocking transfer
// between in-memory endpoints. The fairness protocols treat OT as a
// hybrid; the message-level session API below is exercised by tests.
type Engine interface {
	// Transfer runs a 1-of-len(msgs) OT: the sender contributes msgs,
	// the receiver contributes choice, and only msgs[choice] is returned.
	Transfer(rng io.Reader, msgs [][]byte, choice int) ([]byte, error)
}

// rfc3526Group1536 is the 1536-bit MODP group prime from RFC 3526 §2,
// a safe prime with generator 2.
const rfc3526Group1536 = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
	"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
	"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
	"670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"

// group holds the DDH group parameters.
type group struct {
	p *big.Int // modulus
	q *big.Int // order of the subgroup of squares, (p-1)/2
	g *big.Int // generator of the subgroup of squares
}

func newGroup() group {
	p, ok := new(big.Int).SetString(rfc3526Group1536, 16)
	if !ok {
		// The constant is compiled in; failing to parse it is a build
		// defect, not a runtime condition.
		panic("ot: invalid embedded group modulus")
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1)
	// 4 = 2² generates the subgroup of quadratic residues.
	return group{p: p, q: q, g: big.NewInt(4)}
}

// defaultGroup is shared by all NaorPinkas engines (immutable after init).
var defaultGroup = newGroup()

// randScalar draws a uniform exponent in [1, q).
func (gr group) randScalar(rng io.Reader) (*big.Int, error) {
	max := new(big.Int).Sub(gr.q, big.NewInt(1))
	for {
		buf := make([]byte, (max.BitLen()+7)/8)
		if _, err := io.ReadFull(rng, buf); err != nil {
			return nil, fmt.Errorf("ot: scalar randomness: %w", err)
		}
		k := new(big.Int).SetBytes(buf)
		k.Mod(k, max)
		k.Add(k, big.NewInt(1))
		return k, nil
	}
}

// randElement draws a uniform element of the subgroup (g^r).
func (gr group) randElement(rng io.Reader) (*big.Int, error) {
	r, err := gr.randScalar(rng)
	if err != nil {
		return nil, err
	}
	return new(big.Int).Exp(gr.g, r, gr.p), nil
}

// kdf derives a one-time pad of length n from a group element and a
// domain-separating index.
func kdf(elem *big.Int, index, n int) []byte {
	out := make([]byte, 0, n)
	seed := elem.Bytes()
	counter := 0
	for len(out) < n {
		h := sha256.New()
		h.Write([]byte{byte(index), byte(index >> 8), byte(counter), byte(counter >> 8)})
		h.Write(seed)
		out = append(out, h.Sum(nil)...)
		counter++
	}
	return out[:n]
}

func xorInto(dst, pad []byte) {
	for i := range dst {
		dst[i] ^= pad[i]
	}
}

func validate(msgs [][]byte, choice int) error {
	if len(msgs) < 2 {
		return ErrBadMsgCount
	}
	for _, m := range msgs[1:] {
		if len(m) != len(msgs[0]) {
			return ErrBadLengths
		}
	}
	if choice < 0 || choice >= len(msgs) {
		return ErrBadChoice
	}
	return nil
}
