package rng

import (
	"math/rand"
	"testing"
)

var slabSeeds = []int64{0, 1, -1, 42, -9, 89482311, 1 << 40, -(1 << 40), 7919}

// TestPrefixMatchesSource pins the prefix shortcut against the full
// construction: the first k outputs must be bit-identical for every k
// up to MaxPrefix.
func TestPrefixMatchesSource(t *testing.T) {
	for _, seed := range slabSeeds {
		src := NewSource(seed)
		want := make([]uint64, MaxPrefix)
		for i := range want {
			want[i] = src.Uint64()
		}
		for _, k := range []int{1, 2, 3, 7, 16, 64, MaxPrefix - 1, MaxPrefix} {
			dst := make([]uint64, k)
			Prefix(seed, dst)
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("seed %d k %d: Prefix[%d] = %d, Source gives %d", seed, k, i, dst[i], want[i])
				}
			}
		}
	}
}

func TestPrefixTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Prefix(len > MaxPrefix) did not panic")
		}
	}()
	Prefix(1, make([]uint64, MaxPrefix+1))
}

// TestSlabSourceExact drives a SlabSource past its pre-drawn prefix and
// checks the emitted stream stays bit-identical to the canonical source,
// for every want mode (lazy, slab, eager) and across reseeds.
func TestSlabSourceExact(t *testing.T) {
	const draws = 3 * MaxPrefix
	s := NewSlabSource()
	for _, want := range []int{0, 1, 5, 64, MaxPrefix, MaxPrefix + 1, 10 * MaxPrefix} {
		for _, seed := range slabSeeds {
			ref := NewSource(seed)
			s.SetWant(want)
			s.Seed(seed)
			for i := 0; i < draws; i++ {
				if got, exp := s.Uint64(), ref.Uint64(); got != exp {
					t.Fatalf("want %d seed %d draw %d: slab %d, source %d", want, seed, i, got, exp)
				}
			}
			if s.Served() != draws {
				t.Fatalf("Served = %d, want %d", s.Served(), draws)
			}
		}
	}
}

// TestSlabSourceUnderRand checks the slab source behind *rand.Rand,
// including the Read path (rand.Rand carries read-buffer state that
// Seed must reset) and the derived Intn/Float64 draws the engine uses.
func TestSlabSourceUnderRand(t *testing.T) {
	s := NewSlabSource()
	s.SetWant(8)
	r := rand.New(s)
	for _, seed := range slabSeeds {
		ref := rand.New(NewSource(seed))
		r.Seed(seed)
		buf, refBuf := make([]byte, 13), make([]byte, 13)
		for i := 0; i < 40; i++ {
			switch i % 4 {
			case 0:
				if got, exp := r.Int63(), ref.Int63(); got != exp {
					t.Fatalf("seed %d Int63 #%d: %d != %d", seed, i, got, exp)
				}
			case 1:
				if got, exp := r.Intn(1000), ref.Intn(1000); got != exp {
					t.Fatalf("seed %d Intn #%d: %d != %d", seed, i, got, exp)
				}
			case 2:
				if got, exp := r.Float64(), ref.Float64(); got != exp {
					t.Fatalf("seed %d Float64 #%d: %v != %v", seed, i, got, exp)
				}
			case 3:
				r.Read(buf)
				ref.Read(refBuf)
				for j := range buf {
					if buf[j] != refBuf[j] {
						t.Fatalf("seed %d Read #%d byte %d: %x != %x", seed, i, buf[j], refBuf[j], j)
					}
				}
			}
		}
	}
}

// TestSlabSourceNoAllocSteadyState pins the per-reseed cost: once the
// slab buffer exists, SetWant+Seed+draws must not allocate.
func TestSlabSourceNoAllocSteadyState(t *testing.T) {
	s := NewSlabSource()
	s.SetWant(32)
	s.Seed(1) // warm the slab buffer
	allocs := testing.AllocsPerRun(100, func() {
		s.SetWant(32)
		s.Seed(7)
		for i := 0; i < 32; i++ {
			s.Uint64()
		}
	})
	if allocs != 0 {
		t.Fatalf("slab reseed+draw allocates %v times per run, want 0", allocs)
	}
}

func BenchmarkSeedFull(b *testing.B) {
	s := NewSource(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
	}
}

func BenchmarkSeedSlab16(b *testing.B) {
	s := NewSlabSource()
	s.SetWant(16)
	s.Seed(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
		for j := 0; j < 16; j++ {
			s.Uint64()
		}
	}
}
