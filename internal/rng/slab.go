package rng

import "math/rand"

// Pre-drawn stream slabs.
//
// The estimator's compiled execution plans (internal/sim.CompilePlan)
// record how many values each of a run's RNG streams actually consumes —
// for ΠOpt-2SFE that is n+2 master draws, ~10 protocol draws and zero
// adversary/party draws — while Seed pays for all 607 state words of
// every stream regardless. The slab source closes that gap: it serves
// the first k outputs of the canonical stream from a prefix computed
// directly, without constructing the rest of the state.
//
// The prefix shortcut follows from the generator's shape. After Seed,
// tap = 0 and feed = rngLen − rngTap, so draw j (0-based) reads
// vec[feed−1−j] and vec[rngLen−1−j] and writes the sum back to the feed
// position. The first written word, vec[feed−1], is not read again until
// the tap wraps around to it at draw rngTap — so the first rngTap
// outputs are pure functions of the 2k initial state words
//
//	out_j = vec0[feed−1−j] + vec0[rngLen−1−j],  j < rngTap,
//
// and each initial word vec0[i] mixes Lehmer stream steps 21+3i..23+3i
// with the cooked table, reachable by one modular exponentiation per
// chain start plus three multiply-mods per word.

// MaxPrefix is the longest output prefix Prefix can serve: the tap
// distance of the lagged-Fibonacci generator. From draw MaxPrefix on,
// outputs depend on previously written state words, which only the full
// Seed construction provides.
const MaxPrefix = rngTap

// lehmerPow returns 48271^e mod 2³¹−1 by square-and-multiply; e is tiny
// (at most ~1842, the warm-up depth of the last state word).
func lehmerPow(e int) uint64 {
	r := uint64(1)
	b := uint64(a1)
	for e > 0 {
		if e&1 == 1 {
			r = r * b % int32max
		}
		b = b * b % int32max
		e >>= 1
	}
	return r
}

// normSeed maps a seed onto the Lehmer starting point exactly as Seed
// does.
func normSeed(seed int64) uint64 {
	seed %= int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}
	return uint64(seed)
}

// chain iterates the three interleaved Lehmer streams that build initial
// state words, starting at word index lo.
type chain struct {
	x1, x2, x3 uint64
	i          int
}

func newChain(seed int64, lo int) chain {
	x1 := normSeed(seed) * lehmerPow(21+3*lo) % int32max
	x2 := x1 * a1 % int32max
	x3 := x2 * a1 % int32max
	return chain{x1: x1, x2: x2, x3: x3, i: lo}
}

// next returns initial state word vec0[c.i] and advances the chain.
func (c *chain) next() int64 {
	w := (int64(c.x1)<<40 ^ int64(c.x2)<<20 ^ int64(c.x3)) ^ cooked[c.i]
	c.x1 = c.x1 * a3 % int32max
	c.x2 = c.x2 * a3 % int32max
	c.x3 = c.x3 * a3 % int32max
	c.i++
	return w
}

// Prefix fills dst with the first len(dst) outputs of the stream
// NewSource(seed).Uint64 would produce, computing only the 2·len(dst)
// state words those outputs touch. len(dst) must not exceed MaxPrefix.
func Prefix(seed int64, dst []uint64) {
	k := len(dst)
	if k == 0 {
		return
	}
	if k > MaxPrefix {
		panic("rng: Prefix length exceeds MaxPrefix")
	}
	// Draw j reads vec0[feed0−1−j] and vec0[rngLen−1−j]; walk both ranges
	// upward and fill dst back to front.
	feed := newChain(seed, rngLen-rngTap-k)
	tap := newChain(seed, rngLen-k)
	for j := k - 1; j >= 0; j-- {
		dst[j] = uint64(feed.next() + tap.next())
	}
}

// SlabSource is a rand.Source64 emitting the exact stream of
// NewSource(seed), built for callers that know (approximately) how many
// values they will draw between reseeds. Seed pre-draws only the
// expected prefix — set with SetWant — instead of constructing the full
// 607-word state: a stream reseeded but never drawn costs nothing, and
// a stream drawing k ≤ MaxPrefix values costs O(k). A draw past the
// pre-drawn prefix transparently falls back to the full construction
// and discards the already-served outputs, so the emitted stream is
// bit-identical to the canonical source no matter how well SetWant
// guessed. Served reports the actual consumption since the last Seed,
// which adaptive callers feed back into SetWant.
//
// A SlabSource is not safe for concurrent use.
type SlabSource struct {
	seed   int64
	want   int
	served int
	slab   []uint64
	live   bool // full holds the stream state, positioned at served
	full   Source
}

var _ rand.Source64 = (*SlabSource)(nil)

// NewSlabSource returns an unseeded slab source expecting no draws.
func NewSlabSource() *SlabSource { return &SlabSource{} }

// SetWant sets how many outputs the next Seed pre-draws: w ≤ 0 defers
// all state construction to the first draw, 0 < w ≤ MaxPrefix pre-draws
// exactly w outputs, and w > MaxPrefix seeds the full generator eagerly
// (the prefix shortcut cannot reach past MaxPrefix).
func (s *SlabSource) SetWant(w int) { s.want = w }

// Served returns how many outputs have been drawn since the last Seed.
func (s *SlabSource) Served() int { return s.served }

// Seed resets the stream to the state NewSource(seed) starts in,
// pre-drawing the SetWant prefix. It reuses the receiver's buffers.
func (s *SlabSource) Seed(seed int64) {
	s.seed = seed
	s.served = 0
	s.live = false
	switch {
	case s.want > MaxPrefix:
		s.full.Seed(seed)
		s.live = true
		s.slab = s.slab[:0]
	case s.want > 0:
		if cap(s.slab) < s.want {
			s.slab = make([]uint64, s.want)
		}
		s.slab = s.slab[:s.want]
		Prefix(seed, s.slab)
	default:
		s.slab = s.slab[:0]
	}
}

// Uint64 returns the next stream value.
func (s *SlabSource) Uint64() uint64 {
	if s.served < len(s.slab) {
		v := s.slab[s.served]
		s.served++
		return v
	}
	if !s.live {
		// Slab exhausted (or never drawn): materialize the full state and
		// skip what the slab already served.
		s.full.Seed(s.seed)
		for i := 0; i < s.served; i++ {
			s.full.Uint64()
		}
		s.live = true
	}
	s.served++
	return s.full.Uint64()
}

// Int63 returns a non-negative 63-bit value.
func (s *SlabSource) Int63() int64 {
	return int64(s.Uint64() & rngMask)
}
