// Package rng provides the estimation engine's random source: a
// math/rand-compatible generator emitting the exact stream of
// rand.NewSource(seed) for every seed, but built for hot reseeding.
//
// The Monte-Carlo estimator derives five fresh streams per simulated run
// (master, protocol, adversary, one per party), and profiling shows the
// stock source spends almost all of that in Seed: the 607-word lagged
// Fibonacci state is warmed up by ~1841 steps of the Lehmer generator
// x' = 48271·x mod (2³¹−1), implemented there with two divisions per
// step and an allocation per source. Source keeps the identical state
// construction — same Lehmer stream, same cooked-table mixing, so the
// output sequence is bit-for-bit the standard library's (pinned by
// TestMatchesMathRand) — but computes each Lehmer step with one 64-bit
// multiply-mod, runs three independent step chains to break the serial
// dependency, and reseeds in place so an arena can reuse one source for
// millions of runs without allocating.
package rng

import "math/rand"

const (
	rngLen  = 607
	rngTap  = 273
	rngMask = 1<<63 - 1

	int32max = 1<<31 - 1 // the Lehmer modulus, a Mersenne prime

	// Powers of the Lehmer multiplier mod 2³¹−1, for jumping the warm-up
	// stream: state word i mixes steps 21+3i, 22+3i, 23+3i of the stream,
	// so seeding needs x·a²¹ once and then stride-3 jumps.
	a1  = 48271
	a2  = a1 * a1 % int32max
	a3  = a2 * a1 % int32max
	a6  = a3 * a3 % int32max
	a12 = a6 * a6 % int32max
	a21 = a12 * a6 % int32max * a3 % int32max
)

// Source is an additive lagged-Fibonacci generator over [rngLen]int64
// with taps (273, 607): a drop-in replacement for the value returned by
// rand.NewSource / rand.NewSource64. It implements rand.Source64, so
// rand.New(rng.NewSource(seed)) behaves identically to
// rand.New(rand.NewSource(seed)) for every derived method.
//
// A Source is not safe for concurrent use.
type Source struct {
	tap  int
	feed int
	vec  [rngLen]int64
}

var _ rand.Source64 = (*Source)(nil)

// NewSource returns a Source seeded with seed.
func NewSource(seed int64) *Source {
	s := new(Source)
	s.Seed(seed)
	return s
}

// New returns a *rand.Rand drawing from a fresh Source: the fast,
// reseedable equivalent of rand.New(rand.NewSource(seed)).
func New(seed int64) *rand.Rand {
	return rand.New(NewSource(seed))
}

// Seed resets the generator to the state rand.NewSource(seed) would
// start in. It reuses the receiver's state array, so reseeding performs
// no allocation.
func (s *Source) Seed(seed int64) {
	s.tap = 0
	s.feed = rngLen - rngTap

	seed %= int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}

	// The stock seeding runs the Lehmer stream x_k = a^k·seed serially:
	// 20 warm-up steps, then three steps per state word. Jump straight to
	// x_21 and advance three stride-3 chains in lockstep — the chains are
	// independent, so the three multiply-mods per word pipeline instead
	// of serializing.
	x1 := uint64(seed) * a21 % int32max
	x2 := x1 * a1 % int32max
	x3 := x2 * a1 % int32max
	for i := range s.vec {
		s.vec[i] = (int64(x1)<<40 ^ int64(x2)<<20 ^ int64(x3)) ^ cooked[i]
		x1 = x1 * a3 % int32max
		x2 = x2 * a3 % int32max
		x3 = x3 * a3 % int32max
	}
}

// Uint64 returns the next value of the additive generator.
func (s *Source) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 returns a non-negative 63-bit value.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() & rngMask)
}
