package rng

import (
	"math/rand"
	"testing"
)

var seeds = []int64{
	0, 1, -1, 2, 42, 7919, 89482311,
	1<<31 - 1, 1 << 31, 1<<31 + 1, -(1<<31 - 1),
	1<<62 + 12345, -(1<<62 + 12345), 1<<63 - 1, -1 << 63,
}

// TestMatchesMathRand pins the drop-in contract at the Source level: for
// every seed the raw Uint64/Int63 stream is identical to
// rand.NewSource's.
func TestMatchesMathRand(t *testing.T) {
	for _, seed := range seeds {
		want := rand.NewSource(seed).(rand.Source64)
		got := NewSource(seed)
		for i := 0; i < 3000; i++ {
			if g, w := got.Uint64(), want.Uint64(); g != w {
				t.Fatalf("seed %d: Uint64 #%d = %d, want %d", seed, i, g, w)
			}
		}
		want.Seed(seed + 1)
		got.Seed(seed + 1)
		for i := 0; i < 700; i++ {
			if g, w := got.Int63(), want.Int63(); g != w {
				t.Fatalf("seed %d: post-reseed Int63 #%d = %d, want %d", seed, i, g, w)
			}
		}
	}
}

// TestRandMethodsMatch pins the contract one level up: a *rand.Rand on a
// Source reproduces every derived method of a stock *rand.Rand,
// including the buffered Read path.
func TestRandMethodsMatch(t *testing.T) {
	for _, seed := range seeds {
		want := rand.New(rand.NewSource(seed))
		got := rand.New(NewSource(seed))
		for i := 0; i < 200; i++ {
			if g, w := got.Intn(1000), want.Intn(1000); g != w {
				t.Fatalf("seed %d: Intn #%d = %d, want %d", seed, i, g, w)
			}
			if g, w := got.Float64(), want.Float64(); g != w {
				t.Fatalf("seed %d: Float64 #%d = %v, want %v", seed, i, g, w)
			}
			if g, w := got.NormFloat64(), want.NormFloat64(); g != w {
				t.Fatalf("seed %d: NormFloat64 #%d = %v, want %v", seed, i, g, w)
			}
		}
		gb, wb := make([]byte, 33), make([]byte, 33)
		for i := 0; i < 8; i++ {
			if _, err := got.Read(gb); err != nil {
				t.Fatal(err)
			}
			if _, err := want.Read(wb); err != nil {
				t.Fatal(err)
			}
			if string(gb) != string(wb) {
				t.Fatalf("seed %d: Read #%d = %x, want %x", seed, i, gb, wb)
			}
		}
		// Rand.Seed must reset the Read buffer alongside the source.
		got.Seed(seed ^ 0x5ca1e)
		want.Seed(seed ^ 0x5ca1e)
		if g, w := got.Int63(), want.Int63(); g != w {
			t.Fatalf("seed %d: post-Rand.Seed Int63 = %d, want %d", seed, g, w)
		}
	}
}

// TestReseedNoAlloc pins the arena property the package exists for:
// reseeding an existing source allocates nothing.
func TestReseedNoAlloc(t *testing.T) {
	s := NewSource(1)
	n := testing.AllocsPerRun(100, func() {
		s.Seed(12345)
		_ = s.Uint64()
	})
	if n != 0 {
		t.Fatalf("Seed+Uint64 allocates %v times per run, want 0", n)
	}
}

func BenchmarkSeed(b *testing.B) {
	s := NewSource(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
	}
}

func BenchmarkStdlibSeed(b *testing.B) {
	s := rand.NewSource(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
	}
}
