package fabric

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/transport"
)

// fabricSpec is the small grid the in-process fabric tests shard:
// 30 cells plus 2 aggregate sums, a couple of seconds of compute.
func fabricSpec() sweep.Spec {
	return sweep.Spec{
		Families:   []string{"oneround", "optn"},
		Gammas:     []core.Payoff{core.StandardPayoff()},
		Ns:         []int{2, 3},
		Costs:      []string{"zero", "optimal"},
		AbortSweep: true,
		Runs:       30,
		Seed:       11,
	}
}

// singleMachineBytes runs the reference sweep.Run and returns the
// certified checkpoint bytes every fabric run must reproduce exactly.
func singleMachineBytes(t *testing.T, spec sweep.Spec) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "single.jsonl")
	if _, err := sweep.Run(spec, path, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func assertByteIdentical(t *testing.T, ref []byte, path string) {
	t.Helper()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		t.Fatalf("fabric checkpoint differs from single-machine run (%d vs %d bytes)", len(got), len(ref))
	}
}

func TestRunLocalByteIdentical(t *testing.T) {
	spec := fabricSpec()
	ref := singleMachineBytes(t, spec)
	path := filepath.Join(t.TempDir(), "fabric.jsonl")

	sum, stats, err := RunLocal(Config{
		Spec:       spec,
		LeaseTTL:   DefaultLocalTTL,
		Checkpoint: path,
	}, 3)
	if err != nil {
		t.Fatalf("RunLocal: %v", err)
	}
	if !sum.OK() {
		t.Fatalf("unexpected breaches: %d", len(sum.Breaches))
	}
	assertByteIdentical(t, ref, path)
	if stats.Joined != 3 || stats.Deaths != 0 {
		t.Errorf("stats: joined=%d deaths=%d, want 3 joined, 0 deaths", stats.Joined, stats.Deaths)
	}
	plan, err := sweep.Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cells != len(plan.Cells) {
		t.Errorf("stats.Cells = %d, want %d", stats.Cells, len(plan.Cells))
	}
}

// TestWorkerKillRecovery kills one worker mid-run (the in-process
// SIGKILL analogue: abrupt close, no goodbye, resumes refused) and
// asserts the survivors absorb its range with the merged report still
// byte-identical.
func TestWorkerKillRecovery(t *testing.T) {
	spec := fabricSpec()
	ref := singleMachineBytes(t, spec)
	path := filepath.Join(t.TempDir(), "fabric.jsonl")

	var mu sync.Mutex
	var workers []*Worker
	var killOnce sync.Once
	cfg := Config{
		Spec:       spec,
		LeaseTTL:   DefaultLocalTTL,
		Checkpoint: path,
		OnRecord: func(accepted, total int) {
			if accepted >= 5 {
				killOnce.Do(func() {
					mu.Lock()
					w := workers[0]
					mu.Unlock()
					w.Kill()
				})
			}
		},
	}
	sum, stats, err := runLocal(cfg, 3, func(i int, w *Worker) {
		mu.Lock()
		workers = append(workers, w)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("runLocal: %v", err)
	}
	if !sum.OK() {
		t.Fatalf("unexpected breaches: %d", len(sum.Breaches))
	}
	assertByteIdentical(t, ref, path)
	if stats.Deaths < 1 {
		t.Errorf("stats.Deaths = %d, want >= 1", stats.Deaths)
	}
}

// TestWorkStealing starts one worker on a single undivided lease, then
// a second worker mid-run: the only way the latecomer gets work is by
// stealing the straggler's back half.
func TestWorkStealing(t *testing.T) {
	spec := fabricSpec()
	ref := singleMachineBytes(t, spec)
	path := filepath.Join(t.TempDir(), "fabric.jsonl")

	var late sync.Once
	var wg sync.WaitGroup
	var coAddr string
	cfg := Config{
		Spec:        spec,
		Workers:     1,
		SplitFactor: 1, // one range covering the whole grid
		MinSteal:    2,
		LeaseTTL:    DefaultLocalTTL,
		Checkpoint:  path,
		OnRecord: func(accepted, total int) {
			if accepted >= 3 {
				late.Do(func() {
					wg.Add(1)
					go func() {
						defer wg.Done()
						_ = NewWorker(coAddr, deriveStream(transport.StreamConfig{}, DefaultLocalTTL, spec.Seed)).Run()
					}()
				})
			}
		},
	}
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coAddr = co.Addr()
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = NewWorker(coAddr, deriveStream(transport.StreamConfig{}, DefaultLocalTTL, spec.Seed)).Run()
	}()

	sum, stats, err := co.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if !sum.OK() {
		t.Fatalf("unexpected breaches: %d", len(sum.Breaches))
	}
	assertByteIdentical(t, ref, path)
	if stats.Steals < 1 {
		t.Errorf("stats.Steals = %d, want >= 1", stats.Steals)
	}
	if stats.Joined != 2 {
		t.Errorf("stats.Joined = %d, want 2", stats.Joined)
	}
}

// TestNoWorkersFails pins the watchdog: a fabric with work and no
// workers must fail loudly, never hang.
func TestNoWorkersFails(t *testing.T) {
	co, err := NewCoordinator(Config{
		Spec:            fabricSpec(),
		LeaseTTL:        400 * time.Millisecond,
		NoWorkerTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = co.Run()
	if err == nil || !strings.Contains(err.Error(), "no live workers") {
		t.Fatalf("err = %v, want no-live-workers failure", err)
	}
}

// TestWorkerGridMismatch pins the handshake guard: a worker whose spec
// plans a different grid must be refused (here simulated by a
// coordinator whose advertised fingerprint can never match — the
// worker plans from the spec it was sent, so a mismatch means
// coordinator and worker disagree on the record sequence).
func TestWorkerRejectsForeignGrid(t *testing.T) {
	spec := fabricSpec()
	plan, err := sweep.Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Seed++
	otherPlan, err := sweep.Plan(other)
	if err != nil {
		t.Fatal(err)
	}
	if plan.GridFingerprint() == otherPlan.GridFingerprint() {
		t.Fatal("fingerprints should differ across seeds")
	}
}
