package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/sweep"
	"repro/internal/transport"
)

// Worker joins a coordinator, plans the same grid locally (verified by
// fingerprint), and computes leased cell ranges through
// sweep.RunCellIndex, streaming each record back as it completes.
// Liveness is a beat every heartbeat interval; crash tolerance is
// entirely the coordinator's problem — a worker that dies mid-lease
// just stops beating.
type Worker struct {
	addr   string
	stream transport.StreamConfig

	mu     sync.Mutex
	conn   *transport.StreamConn
	killed bool
}

// NewWorker prepares a worker for the coordinator at addr. stream
// deadlines default from the transport layer; RunLocal derives them
// from the lease TTL instead.
func NewWorker(addr string, stream transport.StreamConfig) *Worker {
	return &Worker{addr: addr, stream: stream}
}

// JoinStream is the stream configuration a stand-alone worker process
// should use to join a coordinator running with lease TTL ttl: both
// sides derive the same frame deadlines from the same TTL, keeping the
// failure-detection stack consistent across processes. Non-positive
// ttl selects the coordinator's default (3s).
func JoinStream(ttl time.Duration) transport.StreamConfig {
	if ttl <= 0 {
		ttl = 3 * time.Second
	}
	return deriveStream(transport.StreamConfig{}, ttl, 0)
}

// Kill crashes the worker abruptly: the stream closes without a bye,
// refuses resumes, and the coordinator sees a silent death — the
// in-process equivalent of SIGKILL (the subprocess tests use the real
// thing).
func (w *Worker) Kill() {
	w.mu.Lock()
	w.killed = true
	conn := w.conn
	w.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// leaseWork is the worker-side view of its current lease.
type leaseWork struct {
	id        int
	next, end int
}

// Run joins, handshakes, and computes leases until the coordinator
// sends done (nil) or the link dies for good (error). A worker error
// never loses certified work: every delivered record is already on the
// coordinator's side of the wire, and undelivered cells are re-leased.
func (w *Worker) Run() error {
	conn, err := transport.DialStream(w.addr, w.stream)
	if err != nil {
		return fmt.Errorf("fabric: worker dial: %w", err)
	}
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		conn.Close()
		return transport.ErrStreamClosed
	}
	w.conn = conn
	w.mu.Unlock()
	defer conn.Close()

	handshakeWait := 4 * w.stream.Timeout
	if handshakeWait <= 0 {
		handshakeWait = 4 * transport.DefaultRoundTimeout
	}
	if err := sendMsg(conn, msg{Kind: kindJoin}); err != nil {
		return fmt.Errorf("fabric: worker join: %w", err)
	}
	m, err := recvMsg(conn, handshakeWait)
	if err != nil {
		return fmt.Errorf("fabric: worker handshake: %w", err)
	}
	if m.Kind != kindSpec || m.Spec == nil {
		return fmt.Errorf("fabric: worker handshake: expected spec, got %q", m.Kind)
	}
	plan, err := sweep.Plan(*m.Spec)
	if err != nil {
		return fmt.Errorf("fabric: worker plan: %w", err)
	}
	if grid := plan.GridFingerprint(); grid != m.Grid {
		return fmt.Errorf("fabric: grid fingerprint mismatch: planned %s, coordinator has %s", grid, m.Grid)
	}
	heartbeat := time.Duration(m.HeartbeatMS) * time.Millisecond
	if heartbeat <= 0 {
		heartbeat = 250 * time.Millisecond
	}
	if err := sendMsg(conn, msg{Kind: kindReady, Grid: m.Grid}); err != nil {
		return fmt.Errorf("fabric: worker ready: %w", err)
	}

	stop := make(chan struct{})
	defer close(stop)
	go w.beat(conn, heartbeat, stop)
	ctrl := make(chan msg, 64)
	readErr := make(chan error, 1)
	go w.read(conn, heartbeat, ctrl, readErr, stop)

	var cur *leaseWork
	sent := 0
	for {
		if cur == nil {
			select {
			case m := <-ctrl:
				done, err := w.handle(conn, m, &cur)
				if done || err != nil {
					return err
				}
			case err := <-readErr:
				return err
			}
			continue
		}
		// Drain control without blocking — truncates and done must win
		// over the next cell, but an empty channel means compute.
		select {
		case m := <-ctrl:
			done, err := w.handle(conn, m, &cur)
			if done || err != nil {
				return err
			}
			continue
		case err := <-readErr:
			return err
		default:
		}

		rec, err := plan.RunCellIndex(cur.next)
		if err != nil {
			_ = sendMsg(conn, msg{Kind: kindBye, Err: err.Error()})
			return fmt.Errorf("fabric: worker cell %d: %w", cur.next, err)
		}
		raw, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		payload, err := encodeMsg(msg{Kind: kindRecord, Lease: cur.id, Index: cur.next, Rec: raw})
		if err != nil {
			return err
		}
		// Stamp the record ordinal as the frame round: a faultinject
		// crash-at-round r profile means "crash while sending the r-th
		// record", which is how the chaos matrix places deaths
		// mid-lease deterministically.
		sent++
		if err := conn.SendAt(sent, payload); err != nil {
			return fmt.Errorf("fabric: worker record %d: %w", cur.next, err)
		}
		cur.next++
		if cur.next >= cur.end {
			if err := sendMsg(conn, msg{Kind: kindLeaseDone, Lease: cur.id}); err != nil {
				return err
			}
			cur = nil
		}
	}
}

// handle processes one control message. done=true means a clean
// coordinator-driven shutdown.
func (w *Worker) handle(conn *transport.StreamConn, m msg, cur **leaseWork) (bool, error) {
	switch m.Kind {
	case kindLease:
		*cur = &leaseWork{id: m.Lease, next: m.Start, end: m.End}
	case kindTruncate:
		l := *cur
		if l == nil || l.id != m.Lease || m.End >= l.end {
			return false, nil
		}
		l.end = m.End
		if l.next >= l.end {
			*cur = nil
			if err := sendMsg(conn, msg{Kind: kindLeaseDone, Lease: m.Lease}); err != nil {
				return false, err
			}
		}
	case kindDone:
		_ = sendMsg(conn, msg{Kind: kindBye})
		return true, nil
	case kindPing:
		// Liveness only.
	}
	return false, nil
}

// beat sends a liveness heartbeat every interval until the stream dies
// or the worker shuts down. Beats are what the coordinator's lease TTL
// counts: ~8 missed beats = dead.
func (w *Worker) beat(conn *transport.StreamConn, interval time.Duration, stop chan struct{}) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			if sendMsg(conn, msg{Kind: kindBeat}) != nil {
				return
			}
		}
	}
}

// read is the worker's receive loop: coordinator pings arrive every
// heartbeat, so a Recv quiet for a whole lease TTL means the link
// broke — the transport heals it by resume on the next call, and only
// repeated consecutive stalls count as the coordinator being gone.
func (w *Worker) read(conn *transport.StreamConn, heartbeat time.Duration, ctrl chan msg, readErr chan error, stop chan struct{}) {
	timeout := 8 * heartbeat
	stalls := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		m, err := recvMsg(conn, timeout)
		if err != nil {
			if errors.Is(err, transport.ErrStreamClosed) || errors.Is(err, transport.ErrKilled) {
				readErr <- err
				return
			}
			if errors.Is(err, transport.ErrStreamStalled) {
				stalls++
				if stalls >= 3 {
					readErr <- fmt.Errorf("fabric: coordinator unreachable: %w", err)
					return
				}
				continue
			}
			readErr <- err
			return
		}
		stalls = 0
		select {
		case ctrl <- m:
		case <-stop:
			return
		}
	}
}
