package fabric

import (
	"sync"
	"time"

	"repro/internal/sweep"
)

// RunLocal runs a coordinator plus n in-process workers on loopback —
// one process, real TCP, the full lease protocol. This is what
// `fairsweep -fabric n` and the CI smoke use; it returns the merged
// summary, the run stats, and the worker handles' terminal errors are
// folded into the coordinator's verdict (a worker error after the
// sweep completed is not a failure — its certified records already
// merged).
func RunLocal(cfg Config, n int) (*sweep.Summary, Stats, error) {
	return runLocal(cfg, n, nil)
}

// runLocal additionally exposes the started workers to tests (via
// onStart) so chaos harnesses can Kill them mid-run.
func runLocal(cfg Config, n int, onStart func(i int, w *Worker)) (*sweep.Summary, Stats, error) {
	if n <= 0 {
		n = 1
	}
	cfg.Workers = n
	cfg = cfg.withDefaults()
	co, err := NewCoordinator(cfg)
	if err != nil {
		return nil, Stats{}, err
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := NewWorker(co.Addr(), cfg.WorkerStream)
		if onStart != nil {
			onStart(i, w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run()
		}()
	}
	sum, stats, err := co.Run()
	// Workers exit on done/bye or on their closed conns; bound the wait
	// so a wedged worker can't hang the caller.
	waitTimeout(&wg, 4*cfg.LeaseTTL)
	return sum, stats, err
}

// DefaultLocalTTL is a lease TTL suited to loopback fabrics: fast
// enough that in-process chaos tests converge quickly, long enough
// that heartbeats (TTL/8) don't saturate a single-CPU runner.
const DefaultLocalTTL = 1500 * time.Millisecond
