package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/sweep"
	"repro/internal/transport"
)

// lease is one contiguous [start, end) slice of the plan's cell order,
// held by exactly one worker. next is the first index the coordinator
// has not yet received: records per lease arrive in order (the stream
// is in-order and the worker computes in order), so next is exact, and
// [next, end) is precisely the work lost if the holder dies.
type lease struct {
	id         int
	start, end int
	next       int
	w          *workerState
}

type workerState struct {
	sc    *transport.StreamConn
	lease *lease
	gone  bool // dead or retired; guarded by Coordinator.mu
}

type recovery struct {
	t0         time.Time
	start, end int
}

// Coordinator owns the lease table for one sweep and merges the
// records its workers stream back. Create with NewCoordinator, then
// Run; workers join at Addr any time before completion.
type Coordinator struct {
	cfg  Config
	plan *sweep.Sweep
	grid string
	srv  *transport.StreamServer

	mu         sync.Mutex
	got        []bool
	recs       []sweep.Record
	cellsGot   int
	queue      []sweep.CellRange
	leases     map[int]*lease
	nextLease  int
	live       int
	stats      Stats
	recovering []recovery
	failErr    error

	doneCh   chan struct{}
	failCh   chan struct{}
	doneOnce sync.Once
	failOnce sync.Once
}

// NewCoordinator plans the sweep, splits the cell order into the
// initial lease queue, and starts listening. Run does the rest.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	plan, err := sweep.Plan(cfg.Spec)
	if err != nil {
		return nil, err
	}
	srv, err := transport.ListenStream(cfg.Addr, cfg.Stream)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:    cfg,
		plan:   plan,
		grid:   plan.GridFingerprint(),
		srv:    srv,
		got:    make([]bool, len(plan.Cells)),
		recs:   make([]sweep.Record, len(plan.Cells)),
		queue:  sweep.SplitRanges(len(plan.Cells), cfg.Workers*cfg.SplitFactor),
		leases: make(map[int]*lease),
		doneCh: make(chan struct{}),
		failCh: make(chan struct{}),
	}
	return c, nil
}

// Addr returns the coordinator's listen address (resolves ephemeral
// ports) — what workers pass to NewWorker.
func (c *Coordinator) Addr() string { return c.srv.Addr() }

// Run accepts workers, drives the lease protocol to completion, and
// merges the records into the certified report (written to
// cfg.Checkpoint when set). The returned Stats describe the run even
// when the error is non-nil; like sweep.Run, a certification breach
// comes back as a valid summary plus an ErrBreach-wrapping error.
func (c *Coordinator) Run() (*sweep.Summary, Stats, error) {
	start := time.Now()
	go c.watchdog()

	var wg sync.WaitGroup
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			select {
			case <-c.doneCh:
				return
			case <-c.failCh:
				return
			default:
			}
			sc, err := c.srv.Accept(200 * time.Millisecond)
			if err != nil {
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.serve(sc)
			}()
		}
	}()

	select {
	case <-c.doneCh:
	case <-c.failCh:
	}
	c.srv.Close()
	<-acceptDone
	// Give serve loops a bounded window to exchange done/bye; stragglers
	// hold closed conns and die on their own.
	waitTimeout(&wg, 2*c.cfg.LeaseTTL)

	c.mu.Lock()
	failErr := c.failErr
	stats := c.stats
	stats.RecoveriesMS = append([]float64(nil), c.stats.RecoveriesMS...)
	recs := append([]sweep.Record(nil), c.recs...)
	c.mu.Unlock()

	elapsed := time.Since(start)
	stats.ElapsedMS = float64(elapsed.Microseconds()) / 1000.0
	if secs := elapsed.Seconds(); secs > 0 {
		stats.CellsPerSec = float64(stats.Cells) / secs
	}
	if failErr != nil {
		return nil, stats, failErr
	}
	sum, err := c.plan.Merge(c.cfg.Checkpoint, recs, c.cfg.Progress)
	return sum, stats, err
}

func (c *Coordinator) fail(err error) {
	c.failOnce.Do(func() {
		c.mu.Lock()
		c.failErr = err
		c.mu.Unlock()
		close(c.failCh)
	})
}

func (c *Coordinator) isDone() bool {
	select {
	case <-c.doneCh:
		return true
	default:
		return false
	}
}

// watchdog fails the run when no live worker exists for
// NoWorkerTimeout while cells remain — the only way a fabric run ends
// without either a merged report or a real error.
func (c *Coordinator) watchdog() {
	tick := time.NewTicker(c.cfg.LeaseTTL / 2)
	defer tick.Stop()
	var idleSince time.Time
	for {
		select {
		case <-c.doneCh:
			return
		case <-c.failCh:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		live, got, total := c.live, c.cellsGot, len(c.got)
		c.mu.Unlock()
		if got == total {
			return
		}
		if live > 0 {
			idleSince = time.Time{}
			continue
		}
		if idleSince.IsZero() {
			idleSince = time.Now()
			continue
		}
		if time.Since(idleSince) > c.cfg.NoWorkerTimeout {
			c.fail(fmt.Errorf("fabric: no live workers for %v with %d of %d cells outstanding",
				c.cfg.NoWorkerTimeout, total-got, total))
			return
		}
	}
}

// serve drives one worker: handshake, then a lease/record loop until
// the sweep completes or the worker goes silent past the lease TTL.
func (c *Coordinator) serve(sc *transport.StreamConn) {
	defer sc.Close()
	w := &workerState{sc: sc}

	// Handshake: join → spec → ready, with the grid fingerprint checked
	// both ways. A worker that planned a different grid would stream
	// records for the wrong cells; refuse it outright.
	m, err := recvMsg(sc, c.cfg.LeaseTTL)
	if err != nil || m.Kind != kindJoin {
		return
	}
	spec := c.cfg.Spec
	if sendMsg(sc, msg{
		Kind:        kindSpec,
		Spec:        &spec,
		Grid:        c.grid,
		HeartbeatMS: c.cfg.Heartbeat.Milliseconds(),
	}) != nil {
		return
	}
	m, err = recvMsg(sc, 4*c.cfg.LeaseTTL)
	if err != nil || m.Kind != kindReady || m.Grid != c.grid {
		return
	}

	c.mu.Lock()
	c.live++
	c.stats.Joined++
	c.mu.Unlock()

	stopPing := make(chan struct{})
	defer close(stopPing)
	go c.ping(w, stopPing)

	stalls := 0
	for {
		if c.isDone() {
			_ = sendMsg(sc, msg{Kind: kindDone})
			// Drain until the goodbye (or give up after one TTL): the
			// worker may still be flushing duplicate records.
			for {
				m, err := recvMsg(sc, c.cfg.LeaseTTL)
				if err != nil || m.Kind == kindBye {
					break
				}
			}
			c.drop(w, false)
			return
		}
		select {
		case <-c.failCh:
			c.drop(w, false)
			return
		default:
		}

		c.grant(w)

		m, err := recvMsg(sc, c.cfg.LeaseTTL)
		if err != nil {
			// One stall is not a death: a dropped worker frame blocks
			// in-order delivery until the worker resumes, and the stall
			// itself poisons the conn (closing the socket), which is
			// what prompts a live worker to redial and replay. Only a
			// worker that stays silent through a second full window —
			// ~8 missed beats, resume window included — is dead. Its
			// conn is then closed for good, so a late resume finds the
			// session refused.
			if errors.Is(err, transport.ErrStreamStalled) {
				if stalls++; stalls < 2 {
					continue
				}
			}
			c.drop(w, true)
			return
		}
		stalls = 0
		switch m.Kind {
		case kindBeat, kindJoin:
			// Liveness only.
		case kindRecord:
			if !c.acceptRecord(w, m) {
				c.drop(w, true)
				return
			}
		case kindLeaseDone:
			c.finishLease(w, m.Lease)
		case kindBye:
			c.drop(w, false)
			return
		}
	}
}

// ping keeps the coordinator→worker direction busy so the worker's
// receive path never tears down a healthy-but-quiet connection (the
// transport poisons a conn that delivers nothing for a full frame
// timeout).
func (c *Coordinator) ping(w *workerState, stop chan struct{}) {
	tick := time.NewTicker(c.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			if sendMsg(w.sc, msg{Kind: kindPing}) != nil {
				return
			}
		}
	}
}

// grant hands an idle worker its next lease: from the queue when
// ranges are waiting, otherwise by stealing the biggest straggler's
// back half (both halves ≥ MinSteal). No lease means the worker idles
// on heartbeats until a death or a finished lease frees work.
func (c *Coordinator) grant(w *workerState) {
	c.mu.Lock()
	if w.gone || w.lease != nil || c.cellsGot == len(c.got) {
		c.mu.Unlock()
		return
	}
	var r sweep.CellRange
	var victim *workerState
	var victimLease, victimEnd int
	if len(c.queue) > 0 {
		r = c.queue[0]
		c.queue = c.queue[1:]
	} else {
		var best *lease
		for _, l := range c.leases {
			if l.w != w && (best == nil || l.end-l.next > best.end-best.next) {
				best = l
			}
		}
		if best == nil || best.end-best.next < 2*c.cfg.MinSteal {
			c.mu.Unlock()
			return
		}
		mid := best.next + (best.end-best.next)/2
		r = sweep.CellRange{Start: mid, End: best.end}
		victim, victimLease, victimEnd = best.w, best.id, mid
		best.end = mid
		c.stats.Steals++
	}
	c.nextLease++
	l := &lease{id: c.nextLease, start: r.Start, end: r.End, next: r.Start, w: w}
	c.leases[l.id] = l
	w.lease = l
	c.mu.Unlock()

	if victim != nil {
		// Best-effort: a victim that misses the truncate just computes
		// the stolen cells too; the dedup in acceptRecord absorbs them.
		_ = sendMsg(victim.sc, msg{Kind: kindTruncate, Lease: victimLease, End: victimEnd})
	}
	if err := sendMsg(w.sc, msg{Kind: kindLease, Lease: l.id, Start: l.start, End: l.end}); err != nil {
		c.drop(w, true)
	}
}

// acceptRecord validates and stores one cell record. Exactly-once
// certification lives here: the first record for a cell wins, every
// later copy (steal races, re-leased ranges) is counted and dropped.
// A record whose key doesn't match the planned cell is a protocol
// violation — the worker is dropped (returns false).
func (c *Coordinator) acceptRecord(w *workerState, m msg) bool {
	var rec sweep.Record
	if err := json.Unmarshal(m.Rec, &rec); err != nil {
		return false
	}
	c.mu.Lock()
	if m.Index < 0 || m.Index >= len(c.got) || rec.Key != c.plan.Cells[m.Index].Key {
		c.mu.Unlock()
		return false
	}
	if c.got[m.Index] {
		c.stats.DuplicateRecords++
		c.mu.Unlock()
		return true
	}
	c.got[m.Index] = true
	c.recs[m.Index] = rec
	c.cellsGot++
	c.stats.Cells++
	if l := c.leases[m.Lease]; l != nil && l.w == w && m.Index == l.next {
		l.next++
	}
	for i, r := range c.recovering {
		if m.Index >= r.start && m.Index < r.end {
			c.stats.RecoveriesMS = append(c.stats.RecoveriesMS,
				float64(time.Since(r.t0).Microseconds())/1000.0)
			c.recovering = append(c.recovering[:i], c.recovering[i+1:]...)
			break
		}
	}
	accepted, total := c.cellsGot, len(c.got)
	c.mu.Unlock()

	if cb := c.cfg.OnRecord; cb != nil {
		cb(accepted, total)
	}
	if accepted == total {
		c.doneOnce.Do(func() { close(c.doneCh) })
	}
	return true
}

// finishLease retires a fully delivered lease. A post-truncate
// leasedone can arrive with next < end when the truncate crossed the
// worker's last records in flight; the remainder is requeued, never
// lost.
func (c *Coordinator) finishLease(w *workerState, id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.leases[id]
	if l == nil || l.w != w {
		return
	}
	if l.next < l.end {
		c.queue = append(c.queue, sweep.CellRange{Start: l.next, End: l.end})
		c.stats.Requeues++
	}
	delete(c.leases, id)
	if w.lease == l {
		w.lease = nil
	}
}

// drop retires a worker — dead (requeue its lease remainder, count the
// death, start the recovery clock) or clean (bye after done). Closing
// the conn is what keeps a declared-dead worker from resurrecting: the
// stream refuses resumes once closed.
func (c *Coordinator) drop(w *workerState, dead bool) {
	c.mu.Lock()
	if w.gone {
		c.mu.Unlock()
		return
	}
	w.gone = true
	c.live--
	if dead {
		c.stats.Deaths++
	}
	if l := w.lease; l != nil {
		if l.next < l.end {
			c.queue = append(c.queue, sweep.CellRange{Start: l.next, End: l.end})
			c.stats.Requeues++
			if dead {
				c.recovering = append(c.recovering, recovery{t0: time.Now(), start: l.next, end: l.end})
			}
		}
		delete(c.leases, l.id)
		w.lease = nil
	}
	c.mu.Unlock()
	w.sc.Close()
}

func waitTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	ch := make(chan struct{})
	go func() {
		wg.Wait()
		close(ch)
	}()
	select {
	case <-ch:
		return true
	case <-time.After(d):
		return false
	}
}
