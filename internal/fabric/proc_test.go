package fabric

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/transport"
)

// acceptanceSpec is the ≥1000-cell grid the subprocess acceptance test
// shards across 10 workers (1248 cells + 27 sums, ~2s single-machine).
func acceptanceSpec() sweep.Spec {
	return sweep.Spec{
		Families:   []string{"oneround", "optn", "pi1", "pi2", "gmwhalf", "2sfe"},
		Gammas:     []core.Payoff{core.StandardPayoff(), core.GordonKatzPayoff(), {G00: 0.25, G01: 0, G10: 1, G11: 0.5}},
		Ns:         []int{2, 3, 4, 5, 6, 7},
		Costs:      []string{"zero", "optimal"},
		AbortSweep: true,
		Runs:       10,
		Seed:       11,
	}
}

// TestHelperWorkerProcess is not a test: it is the worker subprocess
// body, re-executed from the acceptance test via os.Args[0] with
// FABRIC_WORKER_ADDR set. It runs a fabric worker to completion (or
// death) and exits.
func TestHelperWorkerProcess(t *testing.T) {
	addr := os.Getenv("FABRIC_WORKER_ADDR")
	if addr == "" {
		t.Skip("helper process body; set FABRIC_WORKER_ADDR to run")
	}
	ttl := 4 * time.Second
	if ms, err := strconv.Atoi(os.Getenv("FABRIC_WORKER_TTL_MS")); err == nil && ms > 0 {
		ttl = time.Duration(ms) * time.Millisecond
	}
	w := NewWorker(addr, deriveStream(transport.StreamConfig{}, ttl, 0))
	if err := w.Run(); err != nil {
		t.Logf("worker exit: %v", err)
	}
}

// TestFabricProcAcceptance is the issue's acceptance pin: a 10-worker
// sweep of a ≥1000-cell grid, with 2 of the workers SIGKILLed
// mid-run, completes with a merged certified report byte-identical to
// the uninterrupted single-machine sweep.Run output.
func TestFabricProcAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess acceptance test skipped in -short mode")
	}
	spec := acceptanceSpec()
	plan, err := sweep.Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cells) < 1000 {
		t.Fatalf("acceptance grid has %d cells, need >= 1000", len(plan.Cells))
	}
	ref := singleMachineBytes(t, spec)
	path := filepath.Join(t.TempDir(), "fabric.jsonl")

	const workers = 10
	ttl := 4 * time.Second

	var mu sync.Mutex
	var procs []*exec.Cmd
	kill := func(i int) {
		mu.Lock()
		defer mu.Unlock()
		if i < len(procs) && procs[i].Process != nil {
			_ = procs[i].Process.Kill() // SIGKILL: no goodbye, no flush
		}
	}
	var kill1, kill2 sync.Once
	cfg := Config{
		Spec:       spec,
		Workers:    workers,
		LeaseTTL:   ttl,
		Checkpoint: path,
		OnRecord: func(accepted, total int) {
			// Two SIGKILLs at distinct phases of the run, both with
			// plenty of cells still outstanding.
			if accepted >= total/8 {
				kill1.Do(func() { kill(0) })
			}
			if accepted >= total/4 {
				kill2.Do(func() { kill(1) })
			}
		},
	}
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	for i := 0; i < workers; i++ {
		cmd := exec.Command(os.Args[0], "-test.run=^TestHelperWorkerProcess$")
		cmd.Env = append(os.Environ(),
			"FABRIC_WORKER_ADDR="+co.Addr(),
			"FABRIC_WORKER_TTL_MS="+strconv.Itoa(int(ttl.Milliseconds())))
		if err := cmd.Start(); err != nil {
			mu.Unlock()
			t.Fatalf("start worker %d: %v", i, err)
		}
		procs = append(procs, cmd)
	}
	mu.Unlock()
	defer func() {
		mu.Lock()
		for _, cmd := range procs {
			if cmd.Process != nil {
				_ = cmd.Process.Kill()
			}
		}
		mu.Unlock()
		for _, cmd := range procs {
			_ = cmd.Wait()
		}
	}()

	sum, stats, err := co.Run()
	if err != nil {
		t.Fatalf("coordinator: %v (stats %+v)", err, stats)
	}
	if !sum.OK() {
		t.Fatalf("unexpected breaches: %d", len(sum.Breaches))
	}
	assertByteIdentical(t, ref, path)
	if stats.Deaths < 2 {
		t.Errorf("stats.Deaths = %d, want >= 2 (two SIGKILLed workers)", stats.Deaths)
	}
	if stats.Cells != len(plan.Cells) {
		t.Errorf("stats.Cells = %d, want %d", stats.Cells, len(plan.Cells))
	}
	if len(stats.RecoveriesMS) == 0 {
		t.Error("no recovery timings recorded after kills")
	}
	t.Logf("stats: %+v", stats)
}
