// Package fabric is the fault-tolerant distributed sweep fabric: a
// coordinator/worker pair that shards a sweep grid across workers with
// crash tolerance end-to-end, and merges the results into the same
// byte-stable certified report a single-machine sweep.Run writes.
//
// The coordinator owns a lease table over contiguous cell ranges — a
// deterministic split of the sweep.Plan order (sweep.SplitRanges). It
// hands leases to workers over the chaos-hardened transport stream
// layer, expires leases when a worker goes silent past the lease TTL,
// re-leases a dead worker's unfinished range to the survivors, and
// work-steals straggler ranges by splitting them. Workers run cells
// through sweep.RunCellIndex — every record is a pure function of
// (Spec, cell index), with FNV-1a cell keys carrying seed derivation,
// so any worker computes any cell bit-identically — and stream per-cell
// records back. The coordinator dedups (a cell is certified exactly
// once no matter how many workers raced to compute it), then
// sweep.Merge reassembles the records, recomputes the aggregate sums,
// and writes a checkpoint byte-identical to an uninterrupted
// single-machine run.
//
// See DESIGN.md §9 for the lease protocol, heartbeat/expiry timings,
// and the merge determinism contract.
package fabric

import (
	"encoding/json"
	"time"

	"repro/internal/sweep"
	"repro/internal/transport"
)

// Wire message kinds, JSON payloads over transport.StreamConn frames.
// The handshake is join → spec → ready; steady state is lease/truncate/
// ping coordinator→worker and record/leasedone/beat worker→coordinator;
// shutdown is done → bye.
const (
	kindJoin      = "join"      // worker → coordinator: request work
	kindSpec      = "spec"      // coordinator → worker: sweep spec + grid fingerprint + heartbeat
	kindReady     = "ready"     // worker → coordinator: planned the same grid, ready for leases
	kindLease     = "lease"     // coordinator → worker: compute cells [Start, End)
	kindTruncate  = "truncate"  // coordinator → worker: a steal shrank lease Lease to end at End
	kindRecord    = "record"    // worker → coordinator: one cell record
	kindLeaseDone = "leasedone" // worker → coordinator: lease fully delivered
	kindBeat      = "beat"      // worker → coordinator: liveness heartbeat
	kindPing      = "ping"      // coordinator → worker: keeps the reverse direction live
	kindDone      = "done"      // coordinator → worker: sweep complete, shut down
	kindBye       = "bye"       // worker → coordinator: clean goodbye
)

// msg is the fabric's wire message. Lease ids are 1-based so omitempty
// never hides a real id; Index 0 is valid and decodes identically when
// omitted.
type msg struct {
	Kind        string          `json:"k"`
	Spec        *sweep.Spec     `json:"spec,omitempty"`
	Grid        string          `json:"grid,omitempty"`
	HeartbeatMS int64           `json:"hb,omitempty"`
	Lease       int             `json:"lease,omitempty"`
	Start       int             `json:"start,omitempty"`
	End         int             `json:"end,omitempty"`
	Index       int             `json:"idx,omitempty"`
	Rec         json.RawMessage `json:"rec,omitempty"`
	Err         string          `json:"err,omitempty"`
}

func encodeMsg(m msg) ([]byte, error) { return json.Marshal(m) }

func sendMsg(sc *transport.StreamConn, m msg) error {
	b, err := encodeMsg(m)
	if err != nil {
		return err
	}
	return sc.Send(b)
}

func recvMsg(sc *transport.StreamConn, timeout time.Duration) (msg, error) {
	b, err := sc.Recv(timeout)
	if err != nil {
		return msg{}, err
	}
	var m msg
	if err := json.Unmarshal(b, &m); err != nil {
		return msg{}, err
	}
	return m, nil
}

// Config tunes one fabric run. Spec is the only required field; every
// duration and count falls back to a sensible default (see
// withDefaults), with the transport deadlines derived from LeaseTTL so
// the whole failure-detection stack stays consistent when only the TTL
// is tuned.
type Config struct {
	// Spec is the sweep to shard. Records depend only on (Spec, cell
	// index), so the coordinator and every worker plan the same grid
	// from it independently (verified by fingerprint at handshake).
	Spec sweep.Spec
	// Addr is the coordinator listen address ("127.0.0.1:0" by default —
	// an ephemeral port, read back via Coordinator.Addr).
	Addr string
	// Workers is the expected worker count; it sizes the initial range
	// split (Workers × SplitFactor ranges). More or fewer workers may
	// actually join — the lease table doesn't care.
	Workers int
	// SplitFactor is how many initial ranges each expected worker gets
	// (default 4): small enough for cheap leases, large enough that the
	// queue outlives early worker deaths without stealing.
	SplitFactor int
	// LeaseTTL bounds how long a worker may go silent before the
	// coordinator declares it dead and re-leases its range (default 3s).
	// Workers heartbeat every LeaseTTL/8 by default, so expiry means
	// ~8 missed beats, not one hiccup.
	LeaseTTL time.Duration
	// Heartbeat is the worker beat (and coordinator ping) interval;
	// zero means LeaseTTL/8.
	Heartbeat time.Duration
	// MinSteal is the smallest half-range worth stealing (default 8
	// cells): an idle worker splits the biggest straggler lease only
	// when both halves have at least MinSteal cells.
	MinSteal int
	// NoWorkerTimeout fails the run when no live worker exists for this
	// long while work remains (default 60s) — the no-progress watchdog.
	NoWorkerTimeout time.Duration
	// Checkpoint, when non-empty, is where the merged certified report
	// is written (byte-identical to a single-machine sweep.Run over the
	// same Spec).
	Checkpoint string
	// Stream tunes the coordinator's transport endpoints. Zero Timeout
	// and ReconnectWait derive from LeaseTTL/2; Fault injects faults on
	// coordinator→worker frames.
	Stream transport.StreamConfig
	// WorkerStream tunes in-process workers started by RunLocal; remote
	// workers bring their own. Zero fields derive like Stream's.
	WorkerStream transport.StreamConfig
	// Progress receives merged records during the final Merge.
	Progress sweep.Progress
	// OnRecord, when non-nil, is called (outside the coordinator lock)
	// after each newly accepted cell record with (accepted, total) —
	// the hook chaos tests use to time kills against progress.
	OnRecord func(accepted, total int)
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.SplitFactor <= 0 {
		c.SplitFactor = 4
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.LeaseTTL / 8
	}
	if c.MinSteal <= 0 {
		c.MinSteal = 8
	}
	if c.NoWorkerTimeout <= 0 {
		c.NoWorkerTimeout = 60 * time.Second
	}
	c.Stream = deriveStream(c.Stream, c.LeaseTTL, c.Spec.Seed)
	c.WorkerStream = deriveStream(c.WorkerStream, c.LeaseTTL, c.Spec.Seed)
	return c
}

// deriveStream fills a StreamConfig's deadlines from the lease TTL: the
// per-frame timeout and the resume window are each half the TTL, so a
// connection loss is healed (or declared fatal) within one lease
// expiry. MaxResumes defaults high — long chaos runs resume constantly
// and the budget exists to stop resurrection, not to ration healing.
func deriveStream(s transport.StreamConfig, ttl time.Duration, seed int64) transport.StreamConfig {
	if s.Timeout <= 0 {
		s.Timeout = ttl / 2
	}
	if s.ReconnectWait <= 0 {
		s.ReconnectWait = ttl / 2
	}
	if s.MaxResumes <= 0 {
		s.MaxResumes = 1 << 16
	}
	if s.Seed == 0 {
		s.Seed = seed
	}
	return s
}

// Stats is the fabric run's operational summary — what the robustness
// machinery actually did, separate from the scientific Summary.
type Stats struct {
	// Joined counts workers that completed the handshake.
	Joined int `json:"joined"`
	// Deaths counts workers declared dead after joining.
	Deaths int `json:"deaths"`
	// Steals counts straggler leases split for idle workers.
	Steals int `json:"steals"`
	// Requeues counts unfinished ranges returned to the queue (worker
	// death or post-truncate remainder).
	Requeues int `json:"requeues"`
	// DuplicateRecords counts records that arrived for already-certified
	// cells (steal/death races). Duplicates are dropped, never merged —
	// each cell is certified exactly once.
	DuplicateRecords int `json:"duplicate_records"`
	// Cells is the number of distinct cell records accepted.
	Cells int `json:"cells"`
	// ElapsedMS and CellsPerSec time the whole run including merge.
	ElapsedMS   float64 `json:"elapsed_ms"`
	CellsPerSec float64 `json:"cells_per_sec"`
	// RecoveriesMS records, per death with unfinished work, the time
	// from declaring the worker dead to the first accepted record inside
	// its requeued range — the recovery-time-after-kill metric.
	RecoveriesMS []float64 `json:"recoveries_ms,omitempty"`
}
