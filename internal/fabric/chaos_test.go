package fabric

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/transport"
)

// chaosTTL is shorter than DefaultLocalTTL so injected losses heal in
// sub-second resume cycles and the matrix stays fast.
const chaosTTL = 800 * time.Millisecond

// TestFabricChaosMatrix drives coordinator↔worker links through seeded
// faultinject profiles — drops, reorders, duplicates, disconnects, and
// a crash-at-round kill — and asserts the deterministic verdict: the
// merged certified report is byte-identical to the single-machine run,
// every cell certified exactly once (Merge validates the full record
// sequence; duplicates are counted, not merged). Profiles are pure
// hashes of (seed, party, dir, seq), so each case replays identically.
func TestFabricChaosMatrix(t *testing.T) {
	spec := fabricSpec()
	ref := singleMachineBytes(t, spec)

	cases := []struct {
		name       string
		coord      faultinject.Profile // host→client frames
		worker     faultinject.Profile // client→host frames
		wantDeaths int
	}{
		{name: "drops-both-directions",
			coord:  faultinject.Profile{Drop: 0.02},
			worker: faultinject.Profile{Drop: 0.02}},
		{name: "reorder-duplicate",
			coord:  faultinject.Profile{Reorder: 0.05, Duplicate: 0.05},
			worker: faultinject.Profile{Reorder: 0.05, Duplicate: 0.05}},
		{name: "disconnects",
			coord:  faultinject.Profile{Disconnect: 0.02},
			worker: faultinject.Profile{Disconnect: 0.02}},
		{name: "crash-at-round",
			worker:     faultinject.Profile{KillParty: 1, KillRound: 3},
			wantDeaths: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			coordInj, err := faultinject.NewRandom(1000, tc.coord)
			if err != nil {
				t.Fatal(err)
			}
			workerInj, err := faultinject.NewRandom(2000, tc.worker)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "chaos.jsonl")
			cfg := Config{
				Spec:         spec,
				LeaseTTL:     chaosTTL,
				MinSteal:     2,
				Checkpoint:   path,
				Stream:       transport.StreamConfig{Fault: coordInj},
				WorkerStream: transport.StreamConfig{Fault: workerInj},
			}
			sum, stats, err := RunLocal(cfg, 3)
			if err != nil {
				t.Fatalf("RunLocal: %v (stats %+v)", err, stats)
			}
			if !sum.OK() {
				t.Fatalf("unexpected breaches: %d", len(sum.Breaches))
			}
			assertByteIdentical(t, ref, path)
			if stats.Deaths < tc.wantDeaths {
				t.Errorf("stats.Deaths = %d, want >= %d", stats.Deaths, tc.wantDeaths)
			}
			t.Logf("stats: %+v", stats)
		})
	}
}

// TestFabricScheduledLeaseDrop targets the protocol rather than the
// odds: a Schedule drops early coordinator→worker frames outright
// (whichever control frames they carry), and the run must still
// converge byte-identically via resume replay.
func TestFabricScheduledLeaseDrop(t *testing.T) {
	spec := fabricSpec()
	ref := singleMachineBytes(t, spec)
	path := filepath.Join(t.TempDir(), "sched.jsonl")

	sched := faultinject.NewSchedule(
		faultinject.Rule{Dir: faultinject.DirHostToClient, Seq: 2, Op: faultinject.Drop, Times: 3},
		faultinject.Rule{Dir: faultinject.DirHostToClient, Seq: 5, Op: faultinject.Drop, Times: 3},
	)
	cfg := Config{
		Spec:       spec,
		LeaseTTL:   chaosTTL,
		MinSteal:   2,
		Checkpoint: path,
		Stream:     transport.StreamConfig{Fault: sched},
	}
	sum, stats, err := RunLocal(cfg, 3)
	if err != nil {
		t.Fatalf("RunLocal: %v (stats %+v)", err, stats)
	}
	if !sum.OK() {
		t.Fatalf("unexpected breaches: %d", len(sum.Breaches))
	}
	assertByteIdentical(t, ref, path)
}
