package contract

import (
	"math/rand"

	"repro/internal/crypto/commitment"
	"repro/internal/sim"
)

// Pi2 is the coin-toss-ordered protocol Π2: as Π1, but the order of the
// contract openings is decided by a Blum coin toss, halving the best
// attacker's advantage.
type Pi2 struct{}

var _ sim.Protocol = Pi2{}

// Name implements sim.Protocol.
func (Pi2) Name() string { return "Pi2-contract" }

// NumParties implements sim.Protocol.
func (Pi2) NumParties() int { return 2 }

// NumRounds implements sim.Protocol: commitments, coin openings, first
// contract opening, second contract opening.
func (Pi2) NumRounds() int { return 4 }

// Func implements sim.Protocol.
func (Pi2) Func(inputs []sim.Value) sim.Value { return pairFunc(inputs) }

// DefaultInput implements sim.Protocol (see Pi1.DefaultInput).
func (Pi2) DefaultInput(sim.PartyID) sim.Value { return uint64(0) }

// Setup implements sim.Protocol: Π2 has no hybrid phase.
func (Pi2) Setup([]sim.Value, *rand.Rand) ([]sim.Value, error) { return nil, nil }

// NewParty implements sim.Protocol. The contract commitment, the random
// coin bit, and its commitment are all drawn here (Clone safety).
func (Pi2) NewParty(id sim.PartyID, input sim.Value, _ sim.Value, _ bool, rng *rand.Rand) (sim.Party, error) {
	sig, _ := input.(uint64)
	cc, co, err := commitment.Commit(rng, encodeSig(sig))
	if err != nil {
		return nil, err
	}
	bit := byte(rng.Intn(2))
	bc, bo, err := commitment.Commit(rng, []byte{bit})
	if err != nil {
		return nil, err
	}
	return &pi2Party{
		id: id, sig: sig, coin: bit,
		contractCommit: cc, contractOpen: co,
		coinCommit: bc, coinOpen: bo,
	}, nil
}

type pi2Party struct {
	id   sim.PartyID
	sig  uint64
	coin byte

	contractCommit commitment.Commitment
	contractOpen   commitment.Opening
	coinCommit     commitment.Commitment
	coinOpen       commitment.Opening

	theirContractC commitment.Commitment
	theirCoinC     commitment.Commitment

	// first is the party that opens its contract first (valid once the
	// coin toss completed).
	first  sim.PartyID
	tossed bool

	result Pair
	done   bool
	failed bool
}

func (p *pi2Party) other() sim.PartyID { return sim.PartyID(3 - int(p.id)) }

func (p *pi2Party) Round(round int, inbox []sim.Message) ([]sim.Message, error) {
	if p.failed {
		return nil, nil
	}
	switch round {
	case 1:
		// Exchange contract and coin commitments.
		return []sim.Message{{From: p.id, To: p.other(),
			Payload: commitMsg{Contract: p.contractCommit, Coin: p.coinCommit}}}, nil
	case 2:
		// Receive commitments; open the coin commitment (single round,
		// both parties simultaneously).
		if !p.recvCommits(inbox) {
			p.failed = true
			return nil, nil
		}
		return []sim.Message{{From: p.id, To: p.other(), Payload: openMsg{Opening: p.coinOpen}}}, nil
	case 3:
		// Verify the counterparty's coin opening, derive the order, and
		// open the contract if we go first.
		theirBit, ok := p.recvCoinOpening(inbox)
		if !ok {
			p.failed = true
			return nil, nil
		}
		b := (p.coin ^ theirBit) & 1
		p.first = sim.PartyID(1 + int(b))
		p.tossed = true
		if p.first == p.id {
			return []sim.Message{{From: p.id, To: p.other(), Payload: openMsg{Opening: p.contractOpen}}}, nil
		}
	case 4:
		// The second opener verifies the first opening and responds; the
		// first opener idles this round.
		if p.tossed && p.first != p.id {
			theirSig, ok := p.recvContractOpening(inbox)
			if !ok {
				p.failed = true
				return nil, nil
			}
			p.setResult(theirSig)
			return []sim.Message{{From: p.id, To: p.other(), Payload: openMsg{Opening: p.contractOpen}}}, nil
		}
	case 5:
		// The first opener verifies the second opening.
		if p.tossed && p.first == p.id {
			theirSig, ok := p.recvContractOpening(inbox)
			if !ok {
				p.failed = true
				return nil, nil
			}
			p.setResult(theirSig)
		}
	}
	return nil, nil
}

func (p *pi2Party) setResult(theirSig uint64) {
	if p.id == 1 {
		p.result = Pair{S1: p.sig, S2: theirSig}
	} else {
		p.result = Pair{S1: theirSig, S2: p.sig}
	}
	p.done = true
}

func (p *pi2Party) recvCommits(inbox []sim.Message) bool {
	for _, m := range inbox {
		if cm, ok := m.Payload.(commitMsg); ok && m.From == p.other() {
			p.theirContractC = cm.Contract
			p.theirCoinC = cm.Coin
			return len(cm.Contract) > 0 && len(cm.Coin) > 0
		}
	}
	return false
}

func (p *pi2Party) recvCoinOpening(inbox []sim.Message) (byte, bool) {
	for _, m := range inbox {
		om, ok := m.Payload.(openMsg)
		if !ok || m.From != p.other() {
			continue
		}
		if !commitment.Verify(p.theirCoinC, om.Opening) || len(om.Opening.Message) != 1 {
			return 0, false
		}
		return om.Opening.Message[0] & 1, true
	}
	return 0, false
}

func (p *pi2Party) recvContractOpening(inbox []sim.Message) (uint64, bool) {
	for _, m := range inbox {
		om, ok := m.Payload.(openMsg)
		if !ok || m.From != p.other() {
			continue
		}
		if !commitment.Verify(p.theirContractC, om.Opening) {
			return 0, false
		}
		return decodeSig(om.Opening.Message)
	}
	return 0, false
}

func (p *pi2Party) Output() (sim.Value, bool) {
	if !p.done {
		return nil, false
	}
	return p.result, true
}

func (p *pi2Party) Clone() sim.Party { cp := *p; return &cp }
