package contract

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
)

func sampler(r *rand.Rand) []sim.Value {
	return []sim.Value{uint64(r.Int63()), uint64(r.Int63())}
}

func TestPi1HonestRun(t *testing.T) {
	tr, err := sim.Run(Pi1{}, []sim.Value{uint64(111), uint64(222)}, sim.Passive{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.AllHonestDelivered() {
		t.Errorf("honest Π1 run failed: %+v", tr.HonestOutputs)
	}
	want := Pair{S1: 111, S2: 222}
	if !sim.ValuesEqual(tr.ExpectedOutput, want) {
		t.Errorf("expected output = %v, want %v", tr.ExpectedOutput, want)
	}
}

func TestPi2HonestRun(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ { // both coin outcomes
		tr, err := sim.Run(Pi2{}, []sim.Value{uint64(5), uint64(6)}, sim.Passive{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.AllHonestDelivered() {
			t.Fatalf("seed %d: honest Π2 run failed: %+v", seed, tr.HonestOutputs)
		}
	}
}

func TestPi1CorruptP2AlwaysWins(t *testing.T) {
	// The Introduction's claim: against Π1 the attacker corrupting the
	// second opener always provokes E10 (utility γ10).
	g := core.StandardPayoff()
	rep, err := core.EstimateUtility(Pi1{}, adversary.NewLockAbort(2), g, sampler, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventFreq[core.E10] < 0.99 {
		t.Errorf("lock-abort-p2 vs Π1: E10 freq = %v, want ~1 (events %v)",
			rep.EventFreq[core.E10], rep.EventFreq)
	}
	if !rep.Utility.MatchesWithin(g.G10, 0.02) {
		t.Errorf("utility = %v, want γ10 = %v", rep.Utility, g.G10)
	}
}

func TestPi1CorruptP1OnlyTies(t *testing.T) {
	// Corrupting the first opener gains nothing: E11.
	g := core.StandardPayoff()
	rep, err := core.EstimateUtility(Pi1{}, adversary.NewLockAbort(1), g, sampler, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventFreq[core.E11] < 0.99 {
		t.Errorf("lock-abort-p1 vs Π1: E11 freq = %v (events %v)",
			rep.EventFreq[core.E11], rep.EventFreq)
	}
}

func TestPi2HalvesTheAttack(t *testing.T) {
	// Against Π2, lock-and-abort on either side gets E10 only when the
	// coin sends the honest party first: utility (γ10+γ11)/2.
	g := core.StandardPayoff()
	bound := core.TwoPartyOptimalBound(g)
	for _, target := range []sim.PartyID{1, 2} {
		rep, err := core.EstimateUtility(Pi2{}, adversary.NewLockAbort(target), g, sampler, 600, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Utility.MatchesWithin(bound, 0.05) {
			t.Errorf("lock-abort-p%d vs Π2: utility %v, want ≈ %v (events %v)",
				target, rep.Utility, bound, rep.EventFreq)
		}
		// E10 and E11 should each occur about half the time.
		if rep.EventFreq[core.E10] < 0.4 || rep.EventFreq[core.E10] > 0.6 {
			t.Errorf("E10 freq = %v, want ≈ 0.5", rep.EventFreq[core.E10])
		}
	}
}

func TestPi2IsFairerThanPi1(t *testing.T) {
	// The headline comparison: Π2 ≻γ Π1.
	g := core.StandardPayoff()
	space1 := adversary.TwoPartySpace(Pi1{}.NumRounds())
	space2 := adversary.TwoPartySpace(Pi2{}.NumRounds())
	sup1, err := core.SupUtility(Pi1{}, space1, g, sampler, 250, 5)
	if err != nil {
		t.Fatal(err)
	}
	sup2, err := core.SupUtility(Pi2{}, space2, g, sampler, 250, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rel := core.Compare(sup2.BestReport.Utility, sup1.BestReport.Utility, 0.05); rel != core.StrictlyFairer {
		t.Errorf("Π2 vs Π1: relation = %v (sup2=%v via %q, sup1=%v via %q)",
			rel, sup2.BestReport.Utility, sup2.Best, sup1.BestReport.Utility, sup1.Best)
	}
	// Quantitatively: sup1 ≈ γ10, sup2 ≈ (γ10+γ11)/2.
	if !sup1.BestReport.Utility.MatchesWithin(g.G10, 0.05) {
		t.Errorf("sup u(Π1) = %v, want ≈ γ10", sup1.BestReport.Utility)
	}
	if !sup2.BestReport.Utility.MatchesWithin(core.TwoPartyOptimalBound(g), 0.05) {
		t.Errorf("sup u(Π2) = %v, want ≈ (γ10+γ11)/2", sup2.BestReport.Utility)
	}
}

func TestPi1AbortSweepNeverBeatsLockAbort(t *testing.T) {
	g := core.StandardPayoff()
	lock, err := core.EstimateUtility(Pi1{}, adversary.NewLockAbort(2), g, sampler, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 4; r++ {
		rep, err := core.EstimateUtility(Pi1{}, adversary.NewAbortAt(r, 2), g, sampler, 300, 8)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Utility.Mean > lock.Utility.Mean+0.03 {
			t.Errorf("abort-at-%d (%v) beats lock-abort (%v)", r, rep.Utility, lock.Utility)
		}
	}
}

func TestSigCodec(t *testing.T) {
	for _, s := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		got, ok := decodeSig(encodeSig(s))
		if !ok || got != s {
			t.Errorf("roundtrip %d -> %d ok=%v", s, got, ok)
		}
	}
	if _, ok := decodeSig([]byte{1, 2}); ok {
		t.Error("short decode accepted")
	}
}

func TestPi2TamperedCoinOpeningAborts(t *testing.T) {
	// An adversary that opens a coin bit inconsistent with its commitment
	// is caught: honest party aborts (E00-style), it never gets γ10.
	adv := &coinCheater{}
	g := core.StandardPayoff()
	rep, err := core.EstimateUtility(Pi2{}, adv, g, sampler, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventFreq[core.E10] > 0.01 {
		t.Errorf("coin cheater achieved E10 freq %v", rep.EventFreq[core.E10])
	}
}

// coinCheater runs p2 honestly except it flips the coin opening bit at
// round 2 (breaking the commitment binding check).
type coinCheater struct {
	adversary.Static
}

func (c *coinCheater) Reset(ctx *sim.AdvContext) {
	c.Static.Targets = []sim.PartyID{2}
	c.Static.Reset(ctx)
}

func (c *coinCheater) Act(round int, inboxes map[sim.PartyID][]sim.Message, rushed []sim.Message) []sim.Message {
	out := c.Static.Act(round, inboxes, rushed)
	if round != 2 {
		return out
	}
	for i := range out {
		om, ok := out[i].Payload.(openMsg)
		if !ok {
			continue
		}
		flipped := om
		flipped.Opening.Message = []byte{om.Opening.Message[0] ^ 1}
		out[i].Payload = flipped
	}
	return out
}
