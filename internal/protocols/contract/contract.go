// Package contract implements the two contract-signing protocols Π1 and
// Π2 from the paper's Introduction — the motivating example for
// comparative fairness.
//
// Both protocols exchange locally signed contracts through commitments
// over secure channels:
//
//	Π1: the parties exchange commitments on their signed contracts; then
//	    p1 opens first, then p2. A corrupted p2 can always abort after
//	    p1's opening, so the best attacker earns γ10 with probability 1.
//
//	Π2: before the contract openings, the parties run a Blum coin toss
//	    (commit–exchange–open) and use the resulting bit to decide who
//	    opens first. The corrupted party receives the output first only
//	    with probability 1/2, halving the best attacker's advantage:
//	    u = (γ10 + γ11)/2. Π2 is "twice as fair as" Π1.
//
// Inputs are modeled as uint64 contract signatures; the (global) output
// is the pair of both signatures.
package contract

import (
	"math/rand"

	"repro/internal/crypto/commitment"
	"repro/internal/sim"
)

// Pair is the global output: both parties' signed contracts.
type Pair struct {
	S1, S2 uint64
}

// commitMsg carries a commitment (round 1 of both protocols).
type commitMsg struct {
	Contract commitment.Commitment
	Coin     commitment.Commitment // only set in Π2
}

// openMsg carries an opening.
type openMsg struct {
	Opening commitment.Opening
}

// encodeSig serializes a signature for committing.
func encodeSig(s uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(s >> (8 * i))
	}
	return b
}

func decodeSig(b []byte) (uint64, bool) {
	if len(b) != 8 {
		return 0, false
	}
	var s uint64
	for i := 0; i < 8; i++ {
		s |= uint64(b[i]) << (8 * i)
	}
	return s, true
}

// pairFunc is the shared ideal function of Π1 and Π2.
func pairFunc(inputs []sim.Value) sim.Value {
	s1, _ := inputs[0].(uint64)
	s2, _ := inputs[1].(uint64)
	return Pair{S1: s1, S2: s2}
}

// Pi1 is the naive protocol Π1.
type Pi1 struct{}

var _ sim.Protocol = Pi1{}

// Name implements sim.Protocol.
func (Pi1) Name() string { return "Pi1-contract" }

// NumParties implements sim.Protocol.
func (Pi1) NumParties() int { return 2 }

// NumRounds implements sim.Protocol: commitments, p1 opens, p2 opens.
func (Pi1) NumRounds() int { return 3 }

// Func implements sim.Protocol.
func (Pi1) Func(inputs []sim.Value) sim.Value { return pairFunc(inputs) }

// DefaultInput implements sim.Protocol. Contract signing has no
// meaningful default — a missing counterparty signature cannot be
// substituted — so local fallback computation never applies.
func (Pi1) DefaultInput(sim.PartyID) sim.Value { return uint64(0) }

// Setup implements sim.Protocol: Π1 has no hybrid phase.
func (Pi1) Setup([]sim.Value, *rand.Rand) ([]sim.Value, error) { return nil, nil }

// NewParty implements sim.Protocol. All randomness (the commitment) is
// drawn here so Round is deterministic and Clone-safe.
func (Pi1) NewParty(id sim.PartyID, input sim.Value, _ sim.Value, _ bool, rng *rand.Rand) (sim.Party, error) {
	sig, _ := input.(uint64)
	c, o, err := commitment.Commit(rng, encodeSig(sig))
	if err != nil {
		return nil, err
	}
	return &pi1Party{id: id, sig: sig, commit: c, opening: o}, nil
}

type pi1Party struct {
	id      sim.PartyID
	sig     uint64
	commit  commitment.Commitment
	opening commitment.Opening
	theirC  commitment.Commitment
	result  Pair
	done    bool
	failed  bool
}

func (p *pi1Party) other() sim.PartyID { return sim.PartyID(3 - int(p.id)) }

func (p *pi1Party) Round(round int, inbox []sim.Message) ([]sim.Message, error) {
	if p.failed {
		return nil, nil
	}
	switch round {
	case 1:
		return []sim.Message{{From: p.id, To: p.other(), Payload: commitMsg{Contract: p.commit}}}, nil
	case 2:
		// Both receive the counterparty's commitment; p1 opens.
		if !p.recvCommit(inbox) {
			p.failed = true
			return nil, nil
		}
		if p.id == 1 {
			return []sim.Message{{From: p.id, To: p.other(), Payload: openMsg{Opening: p.opening}}}, nil
		}
	case 3:
		// p2 verifies p1's opening and, if valid, opens in return.
		if p.id == 2 {
			s1, ok := p.recvOpening(inbox)
			if !ok {
				p.failed = true
				return nil, nil
			}
			p.result, p.done = Pair{S1: s1, S2: p.sig}, true
			return []sim.Message{{From: p.id, To: p.other(), Payload: openMsg{Opening: p.opening}}}, nil
		}
	case 4:
		// p1 verifies p2's opening.
		if p.id == 1 {
			s2, ok := p.recvOpening(inbox)
			if !ok {
				p.failed = true
				return nil, nil
			}
			p.result, p.done = Pair{S1: p.sig, S2: s2}, true
		}
	}
	return nil, nil
}

func (p *pi1Party) recvCommit(inbox []sim.Message) bool {
	for _, m := range inbox {
		if cm, ok := m.Payload.(commitMsg); ok && m.From == p.other() {
			p.theirC = cm.Contract
			return true
		}
	}
	return false
}

func (p *pi1Party) recvOpening(inbox []sim.Message) (uint64, bool) {
	for _, m := range inbox {
		om, ok := m.Payload.(openMsg)
		if !ok || m.From != p.other() {
			continue
		}
		if !commitment.Verify(p.theirC, om.Opening) {
			return 0, false
		}
		return decodeSig(om.Opening.Message)
	}
	return 0, false
}

func (p *pi1Party) Output() (sim.Value, bool) {
	if !p.done {
		return nil, false
	}
	return p.result, true
}

func (p *pi1Party) Clone() sim.Party { cp := *p; return &cp }
