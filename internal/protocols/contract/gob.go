package contract

import "encoding/gob"

// RegisterGobTypes registers the Π1/Π2 wire payloads and output type
// with encoding/gob, for running the protocols over the transport
// package's TCP sessions. Safe to call multiple times.
func RegisterGobTypes() {
	gob.Register(commitMsg{})
	gob.Register(openMsg{})
	gob.Register(Pair{})
}
