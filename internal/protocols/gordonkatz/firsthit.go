package gordonkatz

import (
	"repro/internal/sim"
)

// revealTracker is the common surface of the Gordon–Katz machines the
// first-hit attacker inspects: the last reconstructed iteration and its
// value.
type revealTracker interface {
	sim.Party
	lastReveal() (iter int, value uint64)
}

func (m *gkParty) lastReveal() (int, uint64)   { return m.lastIter, m.lastVal }
func (m *mpMachine) lastReveal() (int, uint64) { return m.lastIter, m.lastVal }

// FirstHit is the exact round-guessing attacker of the Gordon–Katz
// analysis: corrupt one party, run it honestly, and abort the moment a
// *reconstructed* value equals the true output (the worst-case
// environment tells the attacker the inputs, hence the output). Unlike
// the generic lock-and-abort strategy, it never mistakes the F_sfe^$
// fallback value for a reconstruction, so its E10 probability is exactly
// the closed form core.GKFirstHitExact(r, h).
type FirstHit struct {
	target     sim.PartyID
	ctx        *sim.AdvContext
	machine    revealTracker
	aborted    bool
	abortRound int
	learned    sim.Value
	learnedOK  bool
}

var (
	_ sim.Adversary       = (*FirstHit)(nil)
	_ sim.AdversaryCloner = (*FirstHit)(nil)
	_ sim.RoundAborter    = (*FirstHit)(nil)
)

// NewFirstHit corrupts target.
func NewFirstHit(target sim.PartyID) *FirstHit { return &FirstHit{target: target} }

// CloneAdversary implements sim.AdversaryCloner.
func (f *FirstHit) CloneAdversary() sim.Adversary { return NewFirstHit(f.target) }

// Reset implements sim.Adversary.
func (f *FirstHit) Reset(ctx *sim.AdvContext) {
	f.ctx, f.machine = ctx, nil
	f.aborted, f.abortRound = false, 0
	f.learned, f.learnedOK = nil, false
}

// AbortedRound implements sim.RoundAborter: the wire round whose opening
// the last run withheld, if the attacker hit the true output at all.
func (f *FirstHit) AbortedRound() (int, bool) { return f.abortRound, f.aborted }

// InitialCorruptions implements sim.Adversary.
func (f *FirstHit) InitialCorruptions() []sim.PartyID { return []sim.PartyID{f.target} }

// SubstituteInput implements sim.Adversary.
func (f *FirstHit) SubstituteInput(_ sim.PartyID, orig sim.Value) sim.Value { return orig }

// ObserveSetup implements sim.Adversary.
func (f *FirstHit) ObserveSetup(map[sim.PartyID]sim.Value) bool { return false }

// CorruptBefore implements sim.Adversary.
func (f *FirstHit) CorruptBefore(int) []sim.PartyID { return nil }

// OnCorrupt implements sim.Adversary.
func (f *FirstHit) OnCorrupt(_ sim.PartyID, m sim.Party, _ sim.Value) {
	if rt, ok := m.(revealTracker); ok {
		f.machine = rt
	}
}

// Act implements sim.Adversary: honest execution with a value check after
// every reconstruction; on a hit, the current round's messages are
// withheld.
func (f *FirstHit) Act(round int, inboxes map[sim.PartyID][]sim.Message, _ []sim.Message) []sim.Message {
	if f.aborted || f.machine == nil {
		return nil
	}
	out, err := f.machine.Round(round, inboxes[f.target])
	if err != nil {
		return nil
	}
	if iter, v := f.machine.lastReveal(); iter >= 1 && sim.ValuesEqual(v, f.ctx.TrueOutput) {
		f.learned, f.learnedOK = v, true
		f.aborted, f.abortRound = true, round
		return nil // withhold this round's opening: the abort
	}
	for i := range out {
		out[i].From = f.target
	}
	return out
}

// Learned implements sim.Adversary.
func (f *FirstHit) Learned() (sim.Value, bool) { return f.learned, f.learnedOK }
