// Package gordonkatz implements the 1/p-secure ("partially fair")
// protocols of Gordon and Katz analysed in Section 5 and Appendix C of
// the paper:
//
//   - PolyDomain — the protocol for functions where one party's input
//     domain has polynomial size ([GK10] §3.2): a ShareGen hybrid deals
//     authenticated sharings of r = p·|Y| value pairs (a_i, b_i); before
//     a uniformly random switch round i* the values are "fake"
//     (f evaluated on a freshly random counterpart input), from i* on
//     they are the real output. The parties alternately open the
//     sharings; on abort, the victim outputs its last reconstructed
//     value. Theorem 23: the protocol realizes the randomized-abort
//     functionality F_sfe^$ and bounds the attacker utility by 1/p for
//     the payoff vector ~γ = (0, 0, 1, 0).
//
//   - PolyRange — the variant for functions with polynomial-size range
//     ([GK10] §3.3, Theorem 24): fake values are drawn uniformly from
//     the range, with r = p²·|Z| rounds.
//
//   - Pitilde (Π̃, Appendix C.5) — the "leaky AND" protocol that is
//     1/2-secure and fully private by the Gordon–Katz definitions yet
//     leaks p1's input with probability 1/4 on a malicious first
//     message; it separates 1/p-security from the paper's utility-based
//     notion (Lemmas 26/27).
//
// The protocols implement sim.LearnedAuditor: whether the adversary
// "learned" the output is decided by the hidden switch round i*, not by
// value coincidence — exactly the event bookkeeping of the paper's
// simulators for F_sfe^$.
package gordonkatz

import "fmt"

// TwoPartyFn is a two-party function with explicit finite domains.
type TwoPartyFn struct {
	// Name labels the function.
	Name string
	// XDomain and YDomain enumerate the parties' input domains.
	XDomain, YDomain []uint64
	// Range enumerates the output range (used by PolyRange).
	Range []uint64
	// Eval is the reference semantics.
	Eval func(x, y uint64) uint64
	// Default1 and Default2 are the default inputs.
	Default1, Default2 uint64
}

// Validate checks the function description.
func (f TwoPartyFn) Validate() error {
	if len(f.XDomain) == 0 || len(f.YDomain) == 0 {
		return fmt.Errorf("gordonkatz: %s: empty domain", f.Name)
	}
	if f.Eval == nil {
		return fmt.Errorf("gordonkatz: %s: nil Eval", f.Name)
	}
	return nil
}

// AND is the boolean conjunction x ∧ y — the paper's running example in
// Appendix C.5.
func AND() TwoPartyFn {
	return TwoPartyFn{
		Name:    "and",
		XDomain: []uint64{0, 1},
		YDomain: []uint64{0, 1},
		Range:   []uint64{0, 1},
		Eval:    func(x, y uint64) uint64 { return x & y },
	}
}

// Lookup4 is a 4-value lookup f(x, y) = (x + 3·y) mod 4 — a function with
// a slightly larger (still polynomial) domain and range, exercising the
// r = p·|Y| round scaling.
func Lookup4() TwoPartyFn {
	return TwoPartyFn{
		Name:    "lookup4",
		XDomain: []uint64{0, 1, 2, 3},
		YDomain: []uint64{0, 1, 2, 3},
		Range:   []uint64{0, 1, 2, 3},
		Eval:    func(x, y uint64) uint64 { return (x + 3*y) % 4 },
	}
}
