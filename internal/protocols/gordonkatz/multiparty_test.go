package gordonkatz

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
)

func mpWorst(n int) core.InputSampler {
	return func(*rand.Rand) []sim.Value {
		in := make([]sim.Value, n)
		for i := range in {
			in[i] = uint64(1)
		}
		return in
	}
}

func TestMultiPartyHonestRun(t *testing.T) {
	proto, err := NewMultiParty(ANDn(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range [][]sim.Value{
		{uint64(1), uint64(1), uint64(1)},
		{uint64(1), uint64(0), uint64(1)},
		{uint64(0), uint64(0), uint64(0)},
	} {
		for seed := int64(0); seed < 3; seed++ {
			tr, err := sim.Run(proto, in, sim.Passive{}, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !tr.AllHonestDelivered() {
				t.Fatalf("in=%v seed=%d: %+v (expected %v)", in, seed, tr.HonestOutputs, tr.ExpectedOutput)
			}
		}
	}
}

func TestMultiPartyParamErrors(t *testing.T) {
	if _, err := NewMultiParty(ANDn(3), 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := NewMultiParty(NPartyFn{Name: "one", Domains: [][]uint64{{0}}}, 2); err == nil {
		t.Error("1-party function accepted")
	}
	bad := ANDn(3)
	bad.Range = nil
	if _, err := NewMultiParty(bad, 2); err == nil {
		t.Error("empty range accepted")
	}
	bad2 := ANDn(3)
	bad2.Domains[1] = nil
	if _, err := NewMultiParty(bad2, 2); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestMultiPartyUtilityBound(t *testing.T) {
	// ū ≤ 1/p under (0,0,1,0), even for coalitions, with the worst-case
	// all-ones environment.
	g := core.GordonKatzPayoff()
	for _, p := range []int{2, 4} {
		proto, err := NewMultiParty(ANDn(3), p)
		if err != nil {
			t.Fatal(err)
		}
		for _, set := range [][]sim.PartyID{{1}, {3}, {1, 2}} {
			rep, err := core.EstimateUtility(proto, adversary.NewLockAbort(set...), g,
				mpWorst(3), 1000, int64(p))
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Utility.LeqWithin(1.0/float64(p), 0.04) {
				t.Errorf("p=%d set=%v: utility %v exceeds 1/p (events %v)",
					p, set, rep.Utility, rep.EventFreq)
			}
		}
	}
}

func TestMultiPartyAttackIsNontrivial(t *testing.T) {
	// The rushing first-hit attack achieves Θ(1/p).
	g := core.GordonKatzPayoff()
	proto, err := NewMultiParty(ANDn(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.EstimateUtility(proto, adversary.NewLockAbort(1), g, mpWorst(3), 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Utility.Mean < 1.0/(4*2) {
		t.Errorf("utility %v below Θ(1/p) floor", rep.Utility)
	}
}

func TestMultiPartyRoundComplexity(t *testing.T) {
	proto, err := NewMultiParty(ANDn(4), 3)
	if err != nil {
		t.Fatal(err)
	}
	if proto.NumRounds() != 3*16 {
		t.Errorf("rounds = %d, want p·|X1×…×X4| = 48", proto.NumRounds())
	}
	if proto.NumParties() != 4 {
		t.Errorf("parties = %d", proto.NumParties())
	}
}

func TestMultiPartyEarlyAbortRandomReplacement(t *testing.T) {
	// Withholding at round 1 leaves honest parties with the F$
	// replacement; E10 only when i* = 1 (probability 1/r = 1/8).
	g := core.GordonKatzPayoff()
	proto, err := NewMultiParty(ANDn(3), 4) // r = 32
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.EstimateUtility(proto, adversary.NewAbortAt(1, 2), g, mpWorst(3), 1200, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Utility.LeqWithin(1.0/32.0, 0.03) {
		t.Errorf("abort-at-1 utility %v, want ≤ 1/r = 1/32 (events %v)", rep.Utility, rep.EventFreq)
	}
	if rep.CorrectnessViolations < 0.2 {
		t.Errorf("replacement rate %v, expected frequent F$ replacements", rep.CorrectnessViolations)
	}
}

func TestMultiPartySetupAbort(t *testing.T) {
	proto, err := NewMultiParty(ANDn(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(proto, []sim.Value{uint64(1), uint64(1), uint64(1)},
		adversary.NewSetupAbort(2), 11)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.SetupAborted {
		t.Fatal("setup not aborted")
	}
	// Honest parties adopt F$ replacements: no unfair win for anyone.
	if oc := core.Classify(tr); oc.Event == core.E10 {
		t.Error("setup abort classified as E10")
	}
}

func TestMultiPartyTamperedShareBlocks(t *testing.T) {
	// A corrupted party broadcasting a tampered summand is filtered by
	// the MAC check; reconstruction fails and the run degrades to an
	// abort, never a wrong accepted value.
	proto, err := NewMultiParty(ANDn(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	adv := &mpTamperer{}
	rep, err := core.EstimateUtility(proto, adv, core.GordonKatzPayoff(), mpWorst(3), 300, 12)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventFreq[core.E01] > 0.01 {
		// Delivered-real would require honest reconstruction to succeed
		// with a tampered share present — impossible past round 1.
		t.Logf("events: %v", rep.EventFreq)
	}
	if rep.Utility.Mean > 0.5+0.05 {
		t.Errorf("tamperer utility %v exceeds 1/p", rep.Utility)
	}
}

// mpTamperer runs party 1 honestly but corrupts its broadcast summand.
type mpTamperer struct {
	adversary.Static
}

func (a *mpTamperer) Reset(ctx *sim.AdvContext) {
	a.Static.Targets = []sim.PartyID{1}
	a.Static.Reset(ctx)
}

func (a *mpTamperer) Act(round int, inboxes map[sim.PartyID][]sim.Message, rushed []sim.Message) []sim.Message {
	out := a.Static.Act(round, inboxes, rushed)
	for i := range out {
		if sm, ok := out[i].Payload.(mpShareMsg); ok {
			sm.Share.Summand = sm.Share.Summand.Add(1)
			out[i].Payload = sm
		}
	}
	return out
}
