package gordonkatz

import "encoding/gob"

// RegisterGobTypes registers the Gordon–Katz protocols' wire payloads,
// setup outputs, and output type with encoding/gob, for running them
// over the transport package's TCP sessions. Safe to call multiple
// times.
func RegisterGobTypes() {
	gob.Register(gkSetupOut{})
	gob.Register(gkOpen{})
	gob.Register(leakMsg{})
	gob.Register(mpSetupOut{})
	gob.Register(mpShareMsg{})
	gob.Register(uint64(0))
}
