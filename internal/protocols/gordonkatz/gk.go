package gordonkatz

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/crypto/share"
	"repro/internal/field"
	"repro/internal/sim"
)

// fakeMode selects how pre-switch values are generated.
type fakeMode int

const (
	// fakeByDomain: a_i = f(x, ŷ), b_i = f(x̂, y) with uniform ŷ, x̂
	// (the poly-domain protocol).
	fakeByDomain fakeMode = iota + 1
	// fakeByRange: fake values uniform over the output range (the
	// poly-range protocol).
	fakeByRange
)

// Protocol is a Gordon–Katz iterated-reveal protocol in the ShareGen-
// hybrid model. Engine round 2i−1 carries p2's opening of p1's i-th
// value a_i; round 2i carries p1's opening of p2's i-th value b_i —
// within each iteration p1 learns first, as in [GK10].
type Protocol struct {
	Fn TwoPartyFn
	// P is the fairness parameter: utility ≤ 1/P under ~γ = (0,0,1,0).
	P int
	// Iterations is the number of value pairs r.
	Iterations int
	mode       fakeMode
}

var (
	_ sim.Protocol       = Protocol{}
	_ sim.OutcomeAuditor = Protocol{}
)

// ErrBadParam is returned for nonsensical parameters.
var ErrBadParam = errors.New("gordonkatz: p must be ≥ 1")

// NewPolyDomain builds the [GK10] §3.2 protocol: r = p·|Y| iterations.
func NewPolyDomain(fn TwoPartyFn, p int) (Protocol, error) {
	if err := fn.Validate(); err != nil {
		return Protocol{}, err
	}
	if p < 1 {
		return Protocol{}, ErrBadParam
	}
	return Protocol{Fn: fn, P: p, Iterations: p * len(fn.YDomain), mode: fakeByDomain}, nil
}

// NewPolyRange builds the [GK10] §3.3 protocol: r = p²·|Z| iterations.
func NewPolyRange(fn TwoPartyFn, p int) (Protocol, error) {
	if err := fn.Validate(); err != nil {
		return Protocol{}, err
	}
	if p < 1 {
		return Protocol{}, ErrBadParam
	}
	if len(fn.Range) == 0 {
		return Protocol{}, fmt.Errorf("gordonkatz: %s: empty range", fn.Name)
	}
	return Protocol{Fn: fn, P: p, Iterations: p * p * len(fn.Range), mode: fakeByRange}, nil
}

// Name implements sim.Protocol.
func (p Protocol) Name() string {
	kind := "polydomain"
	if p.mode == fakeByRange {
		kind = "polyrange"
	}
	return fmt.Sprintf("gk-%s-%s-p%d", kind, p.Fn.Name, p.P)
}

// NumParties implements sim.Protocol.
func (Protocol) NumParties() int { return 2 }

// NumRounds implements sim.Protocol: two engine rounds per iteration.
func (p Protocol) NumRounds() int { return 2 * p.Iterations }

// Func implements sim.Protocol.
func (p Protocol) Func(inputs []sim.Value) sim.Value {
	x, _ := inputs[0].(uint64)
	y, _ := inputs[1].(uint64)
	return p.Fn.Eval(x, y)
}

// DefaultInput implements sim.Protocol.
func (p Protocol) DefaultInput(id sim.PartyID) sim.Value {
	if id == 1 {
		return p.Fn.Default1
	}
	return p.Fn.Default2
}

// gkSetupOut is one party's ShareGen output: for each iteration, its
// half of the sharing it will reconstruct (mine) and its half of the
// sharing it must open toward the counterparty (theirs).
type gkSetupOut struct {
	Mine   []share.AuthShare
	Theirs []share.AuthShare
}

// gkAudit is the hidden audit state: the switch round.
type gkAudit struct {
	IStar int
}

// Setup implements sim.Protocol: the ShareGen functionality.
func (p Protocol) Setup(inputs []sim.Value, rng *rand.Rand) ([]sim.Value, error) {
	x, _ := inputs[0].(uint64)
	y, _ := inputs[1].(uint64)
	real := p.Fn.Eval(x, y)
	if real >= field.Modulus {
		return nil, fmt.Errorf("gordonkatz: output %d exceeds field", real)
	}
	istar := 1 + rng.Intn(p.Iterations)

	out1 := gkSetupOut{}
	out2 := gkSetupOut{}
	for i := 1; i <= p.Iterations; i++ {
		ai, bi := real, real
		if i < istar {
			ai, bi = p.fakePair(x, y, rng)
		}
		a1, a2, err := share.AuthDeal(rng, field.Element(ai))
		if err != nil {
			return nil, fmt.Errorf("gordonkatz: setup: %w", err)
		}
		b1, b2, err := share.AuthDeal(rng, field.Element(bi))
		if err != nil {
			return nil, fmt.Errorf("gordonkatz: setup: %w", err)
		}
		// p1 reconstructs the a-sequence and opens the b-sequence.
		out1.Mine = append(out1.Mine, a1)
		out1.Theirs = append(out1.Theirs, b1)
		// p2 reconstructs the b-sequence and opens the a-sequence.
		out2.Mine = append(out2.Mine, b2)
		out2.Theirs = append(out2.Theirs, a2)
	}
	return []sim.Value{out1, out2, gkAudit{IStar: istar}}, nil
}

// fakePair draws the pre-switch values per the protocol variant.
func (p Protocol) fakePair(x, y uint64, rng *rand.Rand) (uint64, uint64) {
	switch p.mode {
	case fakeByRange:
		return p.Fn.Range[rng.Intn(len(p.Fn.Range))], p.Fn.Range[rng.Intn(len(p.Fn.Range))]
	default:
		yhat := p.Fn.YDomain[rng.Intn(len(p.Fn.YDomain))]
		xhat := p.Fn.XDomain[rng.Intn(len(p.Fn.XDomain))]
		return p.Fn.Eval(x, yhat), p.Fn.Eval(xhat, y)
	}
}

// NewParty implements sim.Protocol. The F_sfe^$ replacement value (used
// when the counterparty aborts before any reconstruction) is pre-drawn
// here from the distribution Y_i(x_i) of Appendix C.2.
func (p Protocol) NewParty(id sim.PartyID, input sim.Value, out sim.Value, aborted bool, rng *rand.Rand) (sim.Party, error) {
	x, _ := input.(uint64)
	a, b := p.fakePair(x, x, rng) // only the own-input side is used below
	replacement := a
	if id == 2 {
		replacement = b
	}
	m := &gkParty{id: id, input: x, fn: p.Fn, iters: p.Iterations, setupAborted: aborted, replacement: replacement}
	if !aborted {
		so, ok := out.(gkSetupOut)
		if !ok {
			return nil, fmt.Errorf("gordonkatz: party %d: bad setup output %T", id, out)
		}
		m.setup = so
	}
	return m, nil
}

// gkParty is one Gordon–Katz machine. It also serves, with a round
// offset, as the second stage of the leaky protocol Π̃.
type gkParty struct {
	id           sim.PartyID
	input        uint64
	fn           TwoPartyFn
	iters        int
	setupAborted bool
	setup        gkSetupOut
	// offset shifts the engine round numbering (used by Π̃).
	offset int
	// replacement is the pre-drawn F_sfe^$ random-replacement value.
	replacement uint64

	lastIter int    // last successfully reconstructed iteration
	lastVal  uint64 // its value
	done     bool   // terminated (abort or completion)
	failed   bool   // counterpart aborted
}

var _ sim.AuditedParty = (*gkParty)(nil)

func (m *gkParty) other() sim.PartyID { return sim.PartyID(3 - int(m.id)) }

// fallbackOutput is the value adopted on an abort before any successful
// reconstruction: a fresh draw from the F_sfe^$ replacement distribution
// (after a ShareGen abort the default-input evaluation is used instead,
// matching the simulator that substitutes the default input).
func (m *gkParty) fallbackOutput() uint64 {
	if m.setupAborted {
		if m.id == 1 {
			return m.fn.Eval(m.input, m.fn.Default2)
		}
		return m.fn.Eval(m.fn.Default1, m.input)
	}
	return m.replacement
}

func (m *gkParty) Round(round int, inbox []sim.Message) ([]sim.Message, error) {
	if m.setupAborted {
		if !m.done {
			m.lastVal, m.done = m.fallbackOutput(), true
		}
		return nil, nil
	}
	r := round - m.offset
	if r < 1 || m.failed || m.done && r > 2*m.iters {
		return nil, nil
	}
	odd := r%2 == 1
	iter := (r + 1) / 2 // iteration this engine round belongs to

	if m.id == 2 && odd {
		// p2: reconstruct b_{iter−1} (sent by p1 last round), then open
		// a_iter toward p1.
		if iter > 1 && !m.reconstruct(iter-1, inbox) {
			m.abort()
			return nil, nil
		}
		if iter > m.iters {
			// Past the last iteration: the final reconstruct concluded.
			m.done = true
			return nil, nil
		}
		return []sim.Message{{From: m.id, To: m.other(), Payload: gkOpen{Iter: iter, Open: m.setup.Theirs[iter-1].Open()}}}, nil
	}
	if m.id == 1 && !odd {
		// p1: reconstruct a_iter (sent by p2 last round), then open
		// b_iter toward p2.
		if !m.reconstruct(iter, inbox) {
			m.abort()
			return nil, nil
		}
		if iter == m.iters {
			m.done = true
		}
		return []sim.Message{{From: m.id, To: m.other(), Payload: gkOpen{Iter: iter, Open: m.setup.Theirs[iter-1].Open()}}}, nil
	}
	return nil, nil
}

// gkOpen is an iteration opening.
type gkOpen struct {
	Iter int
	Open share.OpenMsg
}

func (m *gkParty) reconstruct(iter int, inbox []sim.Message) bool {
	for _, msg := range inbox {
		op, ok := msg.Payload.(gkOpen)
		if !ok || msg.From != m.other() || op.Iter != iter {
			continue
		}
		v, err := share.AuthReconstruct(m.setup.Mine[iter-1], op.Open)
		if err != nil {
			return false
		}
		m.lastIter, m.lastVal = iter, v.Uint64()
		return true
	}
	return false
}

// abort finalizes the machine with its last reconstructed value.
func (m *gkParty) abort() {
	m.failed, m.done = true, true
	if m.lastIter == 0 {
		m.lastVal = m.fallbackOutput()
	}
}

func (m *gkParty) Output() (sim.Value, bool) {
	// The machine always has a value: the last reconstructed one, or the
	// default-input fallback (never ⊥ — F_sfe^$ replaces, not erases).
	if m.setupAborted && !m.done {
		return nil, false
	}
	if !m.done && m.lastIter == 0 {
		return nil, false
	}
	if !m.done {
		return m.lastVal, true
	}
	return m.lastVal, true
}

func (m *gkParty) Clone() sim.Party {
	cp := *m
	return &cp
}

// AuditInfo implements sim.AuditedParty: the last reconstructed
// iteration.
func (m *gkParty) AuditInfo() sim.Value { return m.lastIter }

// AuditOutcome implements sim.OutcomeAuditor, reconstructing the ideal-
// world events of the F_sfe^$ simulator from the hidden switch round i*
// and the honest machines' iteration counters:
//
//   - corrupted p1 saw a_1..a_k where k = (honest p2's lastIter) + 1
//     (p2 opens a_k before it can detect p1's abort of iteration k), so
//     it learned iff k ≥ i*;
//   - corrupted p2 saw b_1..b_j where j = honest p1's lastIter (p1 only
//     opens b_j after successfully reconstructing a_j), so it learned
//     iff j ≥ i*;
//   - an honest party's output is real iff its lastIter ≥ i*, a random
//     F_sfe^$ replacement iff 0 ≤ lastIter < i* (with lastIter = 0 the
//     replacement draw happens at abort time), and a default-input
//     evaluation only after a ShareGen abort.
func (p Protocol) AuditOutcome(tr *sim.Trace) sim.OutcomeAudit {
	audit, ok := tr.SetupAudit.(gkAudit)
	if !ok {
		return sim.OutcomeAudit{}
	}
	t := tr.NumCorrupted()
	if tr.SetupAborted {
		// Honest parties evaluated on the default input: delivery.
		return sim.OutcomeAudit{Delivered: allOK(tr)}
	}
	switch t {
	case 0:
		return sim.OutcomeAudit{Delivered: allOK(tr)}
	case 2:
		return sim.OutcomeAudit{Learned: true, LearnedValue: tr.HybridOutput, Delivered: true}
	}
	out := sim.OutcomeAudit{}
	honest := sim.PartyID(2)
	if tr.Corrupted[2] {
		honest = 1
	}
	last, _ := tr.HonestAudits[honest].(int)
	if honest == 2 {
		// Corrupted p1 saw a_{last+1}.
		out.Learned = last+1 >= audit.IStar
	} else {
		// Corrupted p2 saw b_last.
		out.Learned = last >= audit.IStar
	}
	if out.Learned {
		out.LearnedValue = tr.HybridOutput
	}
	switch {
	case !allOK(tr):
		// ⊥ output (should not occur for this protocol family).
	case last >= audit.IStar:
		out.Delivered = true
	default:
		out.RandomReplaced = true
	}
	return out
}

// allOK reports whether every honest party produced a non-⊥ output.
func allOK(tr *sim.Trace) bool {
	for _, rec := range tr.HonestOutputs {
		if !rec.OK {
			return false
		}
	}
	return true
}
