package gordonkatz

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// Pitilde is the "leaky AND" protocol Π̃ of Appendix C.5, computing
// x1 ∧ x2:
//
//	round 1: p2 sends a 0-bit to p1;
//	round 2: if p2 sent a 1-bit instead, p1 tosses a biased coin C with
//	         Pr[C=1] = 1/4 and sends its input x1 to p2 if C = 1 (an
//	         empty message otherwise);
//	then the parties run the standard 1/4-secure protocol for AND.
//
// Lemma 27: Π̃ is both 1/2-secure and fully private by the Gordon–Katz
// definitions. Lemma 26: it does not realize even the weakened F_sfe^$ —
// the LeakExtractor below obtains p1's input with probability 1/4,
// a breach no simulator can produce. Π̃ separates 1/p-security from the
// paper's utility-based notion.
type Pitilde struct {
	gk Protocol
}

var (
	_ sim.Protocol       = Pitilde{}
	_ sim.OutcomeAuditor = Pitilde{}
)

// leakOffset is the number of leak-phase rounds before the embedded
// 1/4-secure protocol starts.
const leakOffset = 2

// NewPitilde builds Π̃.
func NewPitilde() (Pitilde, error) {
	gk, err := NewPolyDomain(AND(), 4)
	if err != nil {
		return Pitilde{}, err
	}
	return Pitilde{gk: gk}, nil
}

// Name implements sim.Protocol.
func (Pitilde) Name() string { return "gk-pitilde-and" }

// NumParties implements sim.Protocol.
func (Pitilde) NumParties() int { return 2 }

// NumRounds implements sim.Protocol: the two leak rounds plus the
// embedded protocol.
func (p Pitilde) NumRounds() int { return leakOffset + p.gk.NumRounds() }

// Func implements sim.Protocol.
func (p Pitilde) Func(inputs []sim.Value) sim.Value { return p.gk.Func(inputs) }

// DefaultInput implements sim.Protocol.
func (p Pitilde) DefaultInput(id sim.PartyID) sim.Value { return p.gk.DefaultInput(id) }

// Setup implements sim.Protocol: the embedded protocol's ShareGen.
func (p Pitilde) Setup(inputs []sim.Value, rng *rand.Rand) ([]sim.Value, error) {
	return p.gk.Setup(inputs, rng)
}

// AuditOutcome implements sim.OutcomeAuditor, delegating to the embedded
// protocol (the leak phase releases an input, not the output).
func (p Pitilde) AuditOutcome(tr *sim.Trace) sim.OutcomeAudit { return p.gk.AuditOutcome(tr) }

// leakMsg is a leak-phase message.
type leakMsg struct {
	// Bit is p2's first-round bit.
	Bit byte
	// HasInput marks p1's leaked-input response.
	HasInput bool
	// Input is p1's input when HasInput.
	Input uint64
}

// NewParty implements sim.Protocol. p1's biased coin is drawn here.
func (p Pitilde) NewParty(id sim.PartyID, input sim.Value, out sim.Value, aborted bool, rng *rand.Rand) (sim.Party, error) {
	inner, err := p.gk.NewParty(id, input, out, aborted, rng)
	if err != nil {
		return nil, err
	}
	gp, ok := inner.(*gkParty)
	if !ok {
		return nil, fmt.Errorf("gordonkatz: unexpected inner machine %T", inner)
	}
	gp.offset = leakOffset
	x, _ := input.(uint64)
	return &pitildeParty{id: id, input: x, coinLeaks: rng.Intn(4) == 0, inner: gp}, nil
}

type pitildeParty struct {
	id        sim.PartyID
	input     uint64
	coinLeaks bool // Pr 1/4
	sawOneBit bool
	inner     *gkParty
}

func (m *pitildeParty) Round(round int, inbox []sim.Message) ([]sim.Message, error) {
	switch round {
	case 1:
		if m.id == 2 {
			return []sim.Message{{From: 2, To: 1, Payload: leakMsg{Bit: 0}}}, nil
		}
		return nil, nil
	case 2:
		if m.id == 1 {
			for _, msg := range inbox {
				if lm, ok := msg.Payload.(leakMsg); ok && msg.From == 2 && lm.Bit == 1 {
					m.sawOneBit = true
				}
			}
			if m.sawOneBit && m.coinLeaks {
				return []sim.Message{{From: 1, To: 2, Payload: leakMsg{HasInput: true, Input: m.input}}}, nil
			}
			if m.sawOneBit {
				return []sim.Message{{From: 1, To: 2, Payload: leakMsg{}}}, nil
			}
		}
		return nil, nil
	default:
		return m.inner.Round(round, inbox)
	}
}

func (m *pitildeParty) Output() (sim.Value, bool) { return m.inner.Output() }

// AuditInfo implements sim.AuditedParty, forwarding the embedded
// machine's iteration counter.
func (m *pitildeParty) AuditInfo() sim.Value { return m.inner.AuditInfo() }

func (m *pitildeParty) Clone() sim.Party {
	cp := *m
	cp.inner = m.inner.Clone().(*gkParty)
	return &cp
}

// LeakExtractor is the Lemma 26 attack on Π̃: corrupt p2, send a 1-bit in
// round 1, and read p1's input off the round-2 response when the biased
// coin cooperates (probability 1/4). The rest of the protocol is played
// honestly. The engine verifies the extraction claim against p1's true
// input; a verified claim marks the trace as a privacy breach — an event
// no simulator for F_sfe^$ (or any of the paper's functionalities) can
// produce.
type LeakExtractor struct {
	machine   sim.Party
	extracted uint64
	hasInput  bool
	learned   sim.Value
	learnedOK bool
}

var (
	_ sim.Adversary       = (*LeakExtractor)(nil)
	_ sim.InputExtractor  = (*LeakExtractor)(nil)
	_ sim.AdversaryCloner = (*LeakExtractor)(nil)
)

// NewLeakExtractor builds the attack.
func NewLeakExtractor() *LeakExtractor { return &LeakExtractor{} }

// CloneAdversary implements sim.AdversaryCloner.
func (l *LeakExtractor) CloneAdversary() sim.Adversary { return NewLeakExtractor() }

// Reset implements sim.Adversary.
func (l *LeakExtractor) Reset(*sim.AdvContext) {
	l.machine, l.extracted, l.hasInput = nil, 0, false
	l.learned, l.learnedOK = nil, false
}

// InitialCorruptions implements sim.Adversary.
func (l *LeakExtractor) InitialCorruptions() []sim.PartyID { return []sim.PartyID{2} }

// SubstituteInput implements sim.Adversary.
func (l *LeakExtractor) SubstituteInput(_ sim.PartyID, orig sim.Value) sim.Value { return orig }

// ObserveSetup implements sim.Adversary.
func (l *LeakExtractor) ObserveSetup(map[sim.PartyID]sim.Value) bool { return false }

// CorruptBefore implements sim.Adversary.
func (l *LeakExtractor) CorruptBefore(int) []sim.PartyID { return nil }

// OnCorrupt implements sim.Adversary.
func (l *LeakExtractor) OnCorrupt(_ sim.PartyID, m sim.Party, _ sim.Value) { l.machine = m }

// Act implements sim.Adversary.
func (l *LeakExtractor) Act(round int, inboxes map[sim.PartyID][]sim.Message, _ []sim.Message) []sim.Message {
	// Watch for the leaked input.
	for _, msg := range inboxes[2] {
		if lm, ok := msg.Payload.(leakMsg); ok && lm.HasInput {
			l.extracted, l.hasInput = lm.Input, true
		}
	}
	if round == 1 {
		// Deviate: send the 1-bit.
		return []sim.Message{{From: 2, To: 1, Payload: leakMsg{Bit: 1}}}
	}
	// Otherwise run the machine honestly.
	if l.machine == nil {
		return nil
	}
	out, err := l.machine.Round(round, inboxes[2])
	if err != nil {
		return nil
	}
	if v, ok := l.machine.Output(); ok {
		l.learned, l.learnedOK = v, true
	}
	for i := range out {
		out[i].From = 2
	}
	return out
}

// Learned implements sim.Adversary.
func (l *LeakExtractor) Learned() (sim.Value, bool) { return l.learned, l.learnedOK }

// ExtractedInput implements sim.InputExtractor.
func (l *LeakExtractor) ExtractedInput() (sim.PartyID, sim.Value, bool) {
	return 1, l.extracted, l.hasInput
}
