package gordonkatz

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
)

func andSampler(r *rand.Rand) []sim.Value {
	return []sim.Value{uint64(r.Intn(2)), uint64(r.Intn(2))}
}

// worstInputs is the environment of the GK lower-bound analysis for AND:
// x = (1, 1), where the output fully depends on the counterparty.
func worstInputs(*rand.Rand) []sim.Value {
	return []sim.Value{uint64(1), uint64(1)}
}

func TestPolyDomainHonestRun(t *testing.T) {
	p, err := NewPolyDomain(AND(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range [][]sim.Value{
		{uint64(0), uint64(0)}, {uint64(0), uint64(1)},
		{uint64(1), uint64(0)}, {uint64(1), uint64(1)},
	} {
		for seed := int64(0); seed < 4; seed++ {
			tr, err := sim.Run(p, in, sim.Passive{}, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !tr.AllHonestDelivered() {
				t.Fatalf("in=%v seed=%d: honest run wrong: %+v (expected %v)",
					in, seed, tr.HonestOutputs, tr.ExpectedOutput)
			}
		}
	}
}

func TestPolyDomainParamErrors(t *testing.T) {
	if _, err := NewPolyDomain(AND(), 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := NewPolyDomain(TwoPartyFn{Name: "bad"}, 2); err == nil {
		t.Error("invalid fn accepted")
	}
	if _, err := NewPolyRange(AND(), 0); err == nil {
		t.Error("polyrange p=0 accepted")
	}
	bad := AND()
	bad.Range = nil
	if _, err := NewPolyRange(bad, 2); err == nil {
		t.Error("empty range accepted")
	}
}

func TestTheorem23UtilityBound(t *testing.T) {
	// ū_A ≤ 1/p for ~γ = (0,0,1,0), even for the strongest first-hit
	// attacker (lock-abort) under the worst-case environment.
	g := core.GordonKatzPayoff()
	for _, p := range []int{2, 4, 8} {
		proto, err := NewPolyDomain(AND(), p)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range []sim.PartyID{1, 2} {
			for name, adv := range map[string]sim.Adversary{
				"lock-abort": adversary.NewLockAbort(target),
				"first-hit":  NewFirstHit(target),
			} {
				rep, err := core.EstimateUtility(proto, adv, g, worstInputs, 1200, int64(p))
				if err != nil {
					t.Fatal(err)
				}
				bound := 1.0 / float64(p)
				if !rep.Utility.LeqWithin(bound, 0.03) {
					t.Errorf("p=%d target=%d %s: utility %v exceeds 1/p = %v (events %v)",
						p, target, name, rep.Utility, bound, rep.EventFreq)
				}
			}
		}
	}
}

func TestTheorem23LowerIsNontrivial(t *testing.T) {
	// The first-hit attacker on p1 actually achieves Θ(1/p): for AND at
	// x=(1,1), E10 frequency should be close to 1/p (between 1/(2p) and
	// 1/p + slack), confirming the bound is tight in shape.
	g := core.GordonKatzPayoff()
	for _, p := range []int{2, 4} {
		proto, err := NewPolyDomain(AND(), p)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.EstimateUtility(proto, adversary.NewLockAbort(1), g, worstInputs, 2000, int64(40+p))
		if err != nil {
			t.Fatal(err)
		}
		lo := 1.0 / (2.0 * float64(p))
		if rep.Utility.Mean < lo {
			t.Errorf("p=%d: utility %v below Θ(1/p) expectation (≥ %v)", p, rep.Utility, lo)
		}
	}
}

func TestGKRoundComplexity(t *testing.T) {
	pd, err := NewPolyDomain(Lookup4(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if pd.Iterations != 3*4 {
		t.Errorf("polydomain iterations = %d, want p·|Y| = 12", pd.Iterations)
	}
	pr, err := NewPolyRange(Lookup4(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Iterations != 3*3*4 {
		t.Errorf("polyrange iterations = %d, want p²·|Z| = 36", pr.Iterations)
	}
}

func TestPolyRangeHonestAndBound(t *testing.T) {
	g := core.GordonKatzPayoff()
	proto, err := NewPolyRange(AND(), 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(proto, []sim.Value{uint64(1), uint64(1)}, sim.Passive{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.AllHonestDelivered() {
		t.Fatalf("honest polyrange run failed: %+v", tr.HonestOutputs)
	}
	rep, err := core.EstimateUtility(proto, adversary.NewLockAbort(1), g, worstInputs, 800, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Utility.LeqWithin(1.0/3.0, 0.03) {
		t.Errorf("polyrange utility %v exceeds 1/p (events %v)", rep.Utility, rep.EventFreq)
	}
}

func TestEarlyAbortGivesRandomOutput(t *testing.T) {
	// Aborting at iteration 1 (almost surely before i*) leaves the honest
	// party with a fake value — a correctness "violation" that is exactly
	// the F_sfe^$ random replacement, and the attacker earns nothing.
	g := core.GordonKatzPayoff()
	proto, err := NewPolyDomain(AND(), 8)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.EstimateUtility(proto, adversary.NewAbortAt(2, 1), g, worstInputs, 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	// E10 only when i* = 1: probability 1/r = 1/16.
	if !rep.Utility.LeqWithin(1.0/16.0, 0.03) {
		t.Errorf("abort-at-1 utility %v, want ≤ 1/16 (events %v)", rep.Utility, rep.EventFreq)
	}
	if rep.CorrectnessViolations < 0.3 {
		t.Errorf("expected frequent F$ random replacements, got %v", rep.CorrectnessViolations)
	}
}

func TestAuditRejectsCoincidences(t *testing.T) {
	// An adversary aborting before i* whose last value coincides with the
	// real output must NOT be counted as having learned: with x=(1,1) and
	// abort at iteration 1, a_1 = ŷ equals y = 1 half the time, yet E10
	// frequency stays ≈ 1/r, not ≈ 1/2.
	g := core.GordonKatzPayoff()
	proto, err := NewPolyDomain(AND(), 4) // r = 8
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.EstimateUtility(proto, adversary.NewAbortAt(2, 1), g, worstInputs, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventFreq[core.E10] > 0.2 {
		t.Errorf("E10 freq %v — coincidental values counted as learned", rep.EventFreq[core.E10])
	}
}

func TestSetupAbortGK(t *testing.T) {
	proto, err := NewPolyDomain(AND(), 2)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(proto, []sim.Value{uint64(1), uint64(1)}, adversary.NewSetupAbort(1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.SetupAborted {
		t.Fatal("setup not aborted")
	}
	// Honest p2 falls back to f(default1, x2) = 0 — delivered-by-default.
	if oc := core.Classify(tr); oc.Event != core.E01 {
		t.Errorf("event %v, want E01", oc.Event)
	}
}

func TestPitildeHonestRun(t *testing.T) {
	proto, err := NewPitilde()
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range [][]sim.Value{
		{uint64(0), uint64(0)}, {uint64(1), uint64(1)}, {uint64(1), uint64(0)},
	} {
		tr, err := sim.Run(proto, in, sim.Passive{}, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.AllHonestDelivered() {
			t.Fatalf("in=%v: honest Π̃ run failed: %+v", in, tr.HonestOutputs)
		}
	}
}

func TestLemma27PitildeIsHalfSecure(t *testing.T) {
	// By Gordon–Katz standards Π̃ is 1/2-secure: the utility under
	// ~γ = (0,0,1,0) stays below 1/2 for the whole strategy space.
	g := core.GordonKatzPayoff()
	proto, err := NewPitilde()
	if err != nil {
		t.Fatal(err)
	}
	advs := []core.NamedAdversary{
		{Name: "lock-p1", Adv: adversary.NewLockAbort(1)},
		{Name: "lock-p2", Adv: adversary.NewLockAbort(2)},
		{Name: "leak-extractor", Adv: NewLeakExtractor()},
	}
	sup, err := core.SupUtility(proto, advs, g, worstInputs, 800, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !sup.BestReport.Utility.LeqWithin(0.5, 0.03) {
		t.Errorf("Π̃ sup utility %v (via %q) exceeds 1/2", sup.BestReport.Utility, sup.Best)
	}
}

func TestLemma26PitildeLeaksInput(t *testing.T) {
	// The extractor obtains p1's input with probability ≈ 1/4 — the
	// privacy breach that separates Π̃ from any F_sfe^$-realizing
	// protocol.
	proto, err := NewPitilde()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.EstimateUtility(proto, NewLeakExtractor(), core.GordonKatzPayoff(),
		func(r *rand.Rand) []sim.Value { return []sim.Value{uint64(r.Intn(2)), uint64(0)} }, 1200, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrivacyBreaches < 0.18 || rep.PrivacyBreaches > 0.32 {
		t.Errorf("breach rate %v, want ≈ 1/4", rep.PrivacyBreaches)
	}
}

func TestPolyDomainNoBreachBaseline(t *testing.T) {
	// The genuine GK protocol never leaks inputs: breach rate 0 under the
	// same extractor-style probing (the extractor finds nothing to read).
	proto, err := NewPolyDomain(AND(), 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.EstimateUtility(proto, NewLeakExtractor(), core.GordonKatzPayoff(), andSampler, 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrivacyBreaches != 0 {
		t.Errorf("GK protocol 'leaked' in %v of runs", rep.PrivacyBreaches)
	}
}

func TestLemma25OurNotionImpliesPSecurity(t *testing.T) {
	// Lemma 25's quantitative content: a protocol whose measured utility
	// under (0,0,1,0) is ≤ 1/p yields 1/p'-security. We check the
	// chain on PolyDomain(p=4): utility ≤ 1/4 and no privacy breaches
	// under the documented strategy space.
	g := core.GordonKatzPayoff()
	proto, err := NewPolyDomain(AND(), 4)
	if err != nil {
		t.Fatal(err)
	}
	advs := append(adversary.TwoPartySpace(6), // abort sweep over early rounds
		core.NamedAdversary{Name: "leak-extractor", Adv: NewLeakExtractor()})
	sup, err := core.SupUtility(proto, advs, g, worstInputs, 300, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !sup.BestReport.Utility.LeqWithin(0.25, 0.04) {
		t.Errorf("sup %v (via %q) exceeds 1/4", sup.BestReport.Utility, sup.Best)
	}
	if sup.BestReport.PrivacyBreaches != 0 {
		t.Error("privacy breach against the genuine GK protocol")
	}
}

func TestGKNames(t *testing.T) {
	pd, err := NewPolyDomain(AND(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if pd.Name() != "gk-polydomain-and-p2" {
		t.Error(pd.Name())
	}
	pr, err := NewPolyRange(AND(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Name() != "gk-polyrange-and-p2" {
		t.Error(pr.Name())
	}
	pt, err := NewPitilde()
	if err != nil {
		t.Fatal(err)
	}
	if pt.Name() != "gk-pitilde-and" {
		t.Error(pt.Name())
	}
}

func TestMeasuredMatchesExactFirstHit(t *testing.T) {
	// The lock-abort E10 frequency against PolyDomain(AND, p) at x=(1,1)
	// must match the closed form (1−(1−h)^r)/(r·h) with h = 1/2 (the
	// chance a fake a_i = ŷ equals y = 1) and r = 2p.
	g := core.GordonKatzPayoff()
	for _, p := range []int{2, 4, 8} {
		proto, err := NewPolyDomain(AND(), p)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.EstimateUtility(proto, NewFirstHit(1), g, worstInputs, 3000, int64(60+p))
		if err != nil {
			t.Fatal(err)
		}
		exact := core.GKFirstHitExact(proto.Iterations, 0.5)
		if !rep.Utility.MatchesWithin(exact, 0.02) {
			t.Errorf("p=%d: measured %v, exact %v", p, rep.Utility, exact)
		}
	}
}

// TestZeroFakeHitFirstHitCertain settles the h = 0 semantics of
// core.GKFirstHitExact by simulation: a poly-range protocol whose fake
// range can never produce the real output (h = 0 exactly) gives the
// first-hit attacker its first hit at the switch round i* itself, in
// every run — Pr[E10] = 1, matching the h→0⁺ limit of the closed form
// (and refuting the old h = 0 branch, which claimed 1/r).
func TestZeroFakeHitFirstHitCertain(t *testing.T) {
	fn := TwoPartyFn{
		Name:    "sum2",
		XDomain: []uint64{1},
		YDomain: []uint64{1},
		Range:   []uint64{0, 1}, // excludes the real output 1+1 = 2
		Eval:    func(x, y uint64) uint64 { return x + y },
	}
	proto := Protocol{Fn: fn, P: 1, Iterations: 6, mode: fakeByRange}
	g := core.GordonKatzPayoff()
	rep, err := core.EstimateUtility(proto, NewFirstHit(1), g,
		core.FixedInputs(uint64(1), uint64(1)), 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.EventFreq[core.E10]; got != 1 {
		t.Errorf("zero-fake-hit domain: Pr[E10] = %v, want 1 in every run", got)
	}
	exact := core.GKFirstHitExact(proto.Iterations, 0)
	if exact != 1 {
		t.Errorf("GKFirstHitExact(r, 0) = %v, want 1", exact)
	}
	if rep.Utility.Mean != exact {
		t.Errorf("measured %v disagrees with exact h=0 value %v", rep.Utility.Mean, exact)
	}
}
