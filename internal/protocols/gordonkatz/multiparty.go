package gordonkatz

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/crypto/mac"
	"repro/internal/crypto/share"
	"repro/internal/field"
	"repro/internal/sim"
)

// MultiParty is the n-party generalization of the Gordon–Katz iterated-
// reveal protocol, in the spirit of Beimel–Lindell–Omri–Orlov's
// "1/p-secure multiparty computation without honest majority" (the
// extension the paper cites in Section 1 and Section 5): ShareGen picks a
// uniform switch round i* ∈ [r], prepares values v_1..v_r with v_i = f(x)
// for i ≥ i* and v_i = f(x̂) on fresh uniform inputs before it, and deals
// each v_i as an authenticated n-of-n sharing. The online phase publicly
// reconstructs one v_i per broadcast round; a party that withholds its
// summand at round i denies everyone v_i while — being rushing — having
// already seen the honest summands, so it learns v_i itself. Aborting at
// exactly i* is therefore the only profitable deviation, and it succeeds
// with probability 1/r ≤ 1/p.
type MultiParty struct {
	// Fn is the evaluated function.
	Fn NPartyFn
	// P is the fairness parameter.
	P int
	// Iterations is r = p·|X1×…×Xn|.
	Iterations int
}

// NPartyFn is an n-party function with explicit finite per-party domains
// and output range.
type NPartyFn struct {
	// Name labels the function.
	Name string
	// Domains lists each party's input domain.
	Domains [][]uint64
	// Range enumerates the output range.
	Range []uint64
	// Eval is the reference semantics.
	Eval func(xs []uint64) uint64
	// Defaults are per-party default inputs.
	Defaults []uint64
}

// Validate checks the function description.
func (f NPartyFn) Validate() error {
	if len(f.Domains) < 2 {
		return fmt.Errorf("gordonkatz: %s: need ≥ 2 parties", f.Name)
	}
	for i, d := range f.Domains {
		if len(d) == 0 {
			return fmt.Errorf("gordonkatz: %s: empty domain for party %d", f.Name, i+1)
		}
	}
	if len(f.Range) == 0 {
		return fmt.Errorf("gordonkatz: %s: empty range", f.Name)
	}
	if f.Eval == nil {
		return fmt.Errorf("gordonkatz: %s: nil Eval", f.Name)
	}
	return nil
}

// ANDn is the n-way conjunction with boolean domains.
func ANDn(n int) NPartyFn {
	domains := make([][]uint64, n)
	for i := range domains {
		domains[i] = []uint64{0, 1}
	}
	return NPartyFn{
		Name:    fmt.Sprintf("and%d", n),
		Domains: domains,
		Range:   []uint64{0, 1},
		Eval: func(xs []uint64) uint64 {
			out := uint64(1)
			for _, x := range xs {
				out &= x
			}
			return out
		},
		Defaults: make([]uint64, n),
	}
}

var (
	_ sim.Protocol       = MultiParty{}
	_ sim.OutcomeAuditor = MultiParty{}
)

// NewMultiParty builds the protocol. The iteration count is
// r = p·|X1 × … × Xn| — the product-domain analogue of Gordon–Katz's
// p·|Y| (Beimel et al. require a polynomial product domain for exactly
// this reason): every achievable output is hit by a fake value with
// probability ≥ 1/|X1×…×Xn| per pre-switch round, so the first-hit abort
// succeeds at exactly i* with probability ≤ |X1×…×Xn|/r = 1/p.
func NewMultiParty(fn NPartyFn, p int) (MultiParty, error) {
	if err := fn.Validate(); err != nil {
		return MultiParty{}, err
	}
	if p < 1 {
		return MultiParty{}, ErrBadParam
	}
	product := 1
	for _, d := range fn.Domains {
		product *= len(d)
		if product > 1<<16 {
			return MultiParty{}, fmt.Errorf("gordonkatz: %s: product domain too large (> 2^16)", fn.Name)
		}
	}
	return MultiParty{Fn: fn, P: p, Iterations: p * product}, nil
}

// Name implements sim.Protocol.
func (m MultiParty) Name() string {
	return fmt.Sprintf("gk-multiparty-%s-p%d", m.Fn.Name, m.P)
}

// NumParties implements sim.Protocol.
func (m MultiParty) NumParties() int { return len(m.Fn.Domains) }

// NumRounds implements sim.Protocol: one broadcast round per iteration.
func (m MultiParty) NumRounds() int { return m.Iterations }

// Func implements sim.Protocol.
func (m MultiParty) Func(inputs []sim.Value) sim.Value {
	xs := make([]uint64, len(inputs))
	for i, v := range inputs {
		xs[i], _ = v.(uint64)
	}
	return m.Fn.Eval(xs)
}

// DefaultInput implements sim.Protocol.
func (m MultiParty) DefaultInput(id sim.PartyID) sim.Value {
	if int(id) >= 1 && int(id) <= len(m.Fn.Defaults) {
		return m.Fn.Defaults[id-1]
	}
	return uint64(0)
}

// mpSetupOut is one party's ShareGen output.
type mpSetupOut struct {
	// Mine[i] is this party's summand of v_{i+1}'s sharing.
	Mine []share.AuthNShare
	// Keys[i] verifies iteration i+1's announced summands.
	Keys []mac.ByteKey
}

// Setup implements sim.Protocol.
func (m MultiParty) Setup(inputs []sim.Value, rng *rand.Rand) ([]sim.Value, error) {
	n := m.NumParties()
	real, ok := m.Func(inputs).(uint64)
	if !ok || real >= field.Modulus {
		return nil, errors.New("gordonkatz: bad function output")
	}
	istar := 1 + rng.Intn(m.Iterations)
	outs := make([]mpSetupOut, n)
	for i := 1; i <= m.Iterations; i++ {
		v := real
		if i < istar {
			v = m.fakeValue(rng)
		}
		sharing, err := share.AuthDealN(rng, field.Element(v), n)
		if err != nil {
			return nil, fmt.Errorf("gordonkatz: multiparty setup: %w", err)
		}
		for j := range outs {
			outs[j].Mine = append(outs[j].Mine, sharing.Shares[j])
			outs[j].Keys = append(outs[j].Keys, sharing.Key)
		}
	}
	values := make([]sim.Value, n)
	for j := range outs {
		values[j] = outs[j]
	}
	return append(values, gkAudit{IStar: istar}), nil
}

// fakeValue draws f on fresh uniform inputs.
func (m MultiParty) fakeValue(rng *rand.Rand) uint64 {
	xs := make([]uint64, len(m.Fn.Domains))
	for i, d := range m.Fn.Domains {
		xs[i] = d[rng.Intn(len(d))]
	}
	return m.Fn.Eval(xs)
}

// NewParty implements sim.Protocol.
func (m MultiParty) NewParty(id sim.PartyID, _ sim.Value, out sim.Value, aborted bool, rng *rand.Rand) (sim.Party, error) {
	mach := &mpMachine{
		id: id, n: m.NumParties(), iters: m.Iterations,
		setupAborted: aborted,
		replacement:  m.fakeValue(rng),
	}
	if !aborted {
		so, ok := out.(mpSetupOut)
		if !ok {
			return nil, fmt.Errorf("gordonkatz: party %d: bad setup output %T", id, out)
		}
		mach.setup = so
	}
	return mach, nil
}

// mpShareMsg is the broadcast of one iteration's summand.
type mpShareMsg struct {
	Iter  int
	Share share.AuthNShare
}

type mpMachine struct {
	id           sim.PartyID
	n            int
	iters        int
	setupAborted bool
	setup        mpSetupOut
	replacement  uint64

	lastIter int
	lastVal  uint64
	done     bool
}

var _ sim.AuditedParty = (*mpMachine)(nil)

func (m *mpMachine) Round(round int, inbox []sim.Message) ([]sim.Message, error) {
	if m.setupAborted {
		if !m.done {
			// ShareGen abort: local default evaluation is impossible
			// without the others' inputs; adopt the F$ replacement.
			m.lastVal, m.done = m.replacement, true
		}
		return nil, nil
	}
	if m.done {
		return nil, nil
	}
	// Reconstruct the previous iteration first.
	if round >= 2 && !m.reconstruct(round-1, inbox) {
		m.abort()
		return nil, nil
	}
	if round > m.iters {
		m.done = true
		return nil, nil
	}
	return []sim.Message{{From: m.id, To: sim.Broadcast,
		Payload: mpShareMsg{Iter: round, Share: m.setup.Mine[round-1]}}}, nil
}

func (m *mpMachine) reconstruct(iter int, inbox []sim.Message) bool {
	announced := []share.AuthNShare{m.setup.Mine[iter-1]}
	for _, msg := range inbox {
		if sm, ok := msg.Payload.(mpShareMsg); ok && sm.Iter == iter {
			announced = append(announced, sm.Share)
		}
	}
	v, err := share.AuthReconstructN(m.setup.Keys[iter-1], m.n, announced)
	if err != nil {
		return false
	}
	m.lastIter, m.lastVal = iter, v.Uint64()
	return true
}

// abort finalizes with the last reconstructed value, or the F$
// replacement when nothing was reconstructed.
func (m *mpMachine) abort() {
	if m.lastIter == 0 {
		m.lastVal = m.replacement
	}
	m.done = true
}

func (m *mpMachine) Output() (sim.Value, bool) {
	if m.setupAborted && !m.done {
		return nil, false
	}
	if !m.done && m.lastIter == 0 {
		return nil, false
	}
	return m.lastVal, true
}

func (m *mpMachine) Clone() sim.Party {
	cp := *m
	return &cp
}

// AuditInfo implements sim.AuditedParty.
func (m *mpMachine) AuditInfo() sim.Value { return m.lastIter }

// AuditOutcome implements sim.OutcomeAuditor. A rushing coalition that
// aborts at iteration i has already seen the honest summands of v_i, so
// it learned iff i = (honest lastIter)+1 ≥ i*; honest outputs are real
// iff lastIter ≥ i*, F$ replacements otherwise.
func (m MultiParty) AuditOutcome(tr *sim.Trace) sim.OutcomeAudit {
	audit, ok := tr.SetupAudit.(gkAudit)
	if !ok {
		return sim.OutcomeAudit{}
	}
	t := tr.NumCorrupted()
	if tr.SetupAborted {
		// Honest parties adopted F$ replacements.
		return sim.OutcomeAudit{RandomReplaced: allOK(tr)}
	}
	switch t {
	case 0:
		return sim.OutcomeAudit{Delivered: allOK(tr)}
	case m.NumParties():
		return sim.OutcomeAudit{Learned: true, LearnedValue: tr.HybridOutput, Delivered: true}
	}
	last := 0
	for _, v := range tr.HonestAudits {
		if li, ok := v.(int); ok && li > last {
			last = li
		}
	}
	out := sim.OutcomeAudit{}
	if last+1 >= audit.IStar {
		out.Learned, out.LearnedValue = true, tr.HybridOutput
	}
	switch {
	case !allOK(tr):
	case last >= audit.IStar:
		out.Delivered = true
	default:
		out.RandomReplaced = true
	}
	return out
}
