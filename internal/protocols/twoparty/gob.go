package twoparty

import (
	"encoding/gob"

	"repro/internal/crypto/share"
)

// RegisterGobTypes registers ΠOpt-2SFE's wire payloads, setup outputs,
// and output type with encoding/gob, for running the protocol over the
// transport package's TCP sessions. Safe to call multiple times.
func RegisterGobTypes() {
	// Pointer payloads (*setupOut, *share.OpenMsg — the hot path's
	// scratch-backed forms) need no extra registration: gob flattens
	// indirections, transmitting and decoding them as the value types
	// below, which the receiving machines accept either way.
	gob.Register(setupOut{})
	gob.Register(share.OpenMsg{})
	gob.Register(uint64(0))
}
