package twoparty

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
)

func swapSampler(r *rand.Rand) []sim.Value {
	return []sim.Value{uint64(r.Intn(1 << 20)), uint64(r.Intn(1 << 20))}
}

func TestHonestRunDelivers(t *testing.T) {
	p := New(Swap())
	for seed := int64(0); seed < 6; seed++ { // both orders of i
		tr, err := sim.Run(p, []sim.Value{uint64(10), uint64(20)}, sim.Passive{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.AllHonestDelivered() {
			t.Fatalf("seed %d: honest run failed: %+v", seed, tr.HonestOutputs)
		}
		want := Swap().Eval(10, 20)
		if !sim.ValuesEqual(tr.ExpectedOutput, want) {
			t.Fatalf("expected output %v, want %v", tr.ExpectedOutput, want)
		}
	}
}

func TestSwapFunction(t *testing.T) {
	f := Swap()
	y := f.Eval(3, 5)
	if y != 5<<SwapBits|3 {
		t.Errorf("swap(3,5) = %d", y)
	}
}

func TestMillionairesFunction(t *testing.T) {
	f := Millionaires()
	if f.Eval(5, 3) != 1 || f.Eval(3, 5) != 0 || f.Eval(4, 4) != 0 {
		t.Error("millionaires semantics")
	}
}

func TestSetupAbortFallsBackToDefaults(t *testing.T) {
	p := New(Swap())
	adv := adversary.NewSetupAbort(2)
	tr, err := sim.Run(p, []sim.Value{uint64(7), uint64(9)}, adv, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.SetupAborted {
		t.Fatal("setup not aborted")
	}
	// Honest p1 computes f(7, default2) locally.
	want := Swap().Eval(7, Swap().Default2)
	rec := tr.HonestOutputs[1]
	if !rec.OK || !sim.ValuesEqual(rec.Value, want) {
		t.Errorf("p1 output %+v, want %v", rec, want)
	}
	// Classified E01: the adversary gains nothing.
	if oc := core.Classify(tr); oc.Event != core.E01 {
		t.Errorf("event = %v, want E01", oc.Event)
	}
}

func TestTheorem3UpperBound(t *testing.T) {
	// No strategy in the two-party space beats (γ10+γ11)/2 against
	// ΠOpt-2SFE.
	g := core.StandardPayoff()
	p := New(Swap())
	sup, err := core.SupUtility(p, adversary.TwoPartySpace(p.NumRounds()), g, swapSampler, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	bound := core.TwoPartyOptimalBound(g)
	if !sup.BestReport.Utility.LeqWithin(bound, 0.04) {
		t.Errorf("sup utility %v (via %q) exceeds Theorem 3 bound %v",
			sup.BestReport.Utility, sup.Best, bound)
	}
}

func TestTheorem4LowerBound(t *testing.T) {
	// Agen achieves (γ10+γ11)/2 against ΠOpt-2SFE for the swap function.
	g := core.StandardPayoff()
	p := New(Swap())
	rep, err := core.EstimateUtility(p, adversary.NewAgen(), g, swapSampler, 800, 3)
	if err != nil {
		t.Fatal(err)
	}
	bound := core.TwoPartyOptimalBound(g)
	if !rep.Utility.MatchesWithin(bound, 0.05) {
		t.Errorf("Agen utility %v, want ≈ %v (events %v)", rep.Utility, bound, rep.EventFreq)
	}
}

func TestLemma7PairSum(t *testing.T) {
	// u(A1) + u(A2) ≥ γ10 + γ11.
	g := core.StandardPayoff()
	p := New(Swap())
	u1, err := core.EstimateUtility(p, adversary.NewLockAbort(1), g, swapSampler, 600, 4)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := core.EstimateUtility(p, adversary.NewLockAbort(2), g, swapSampler, 600, 5)
	if err != nil {
		t.Fatal(err)
	}
	sum := u1.Utility.Mean + u2.Utility.Mean
	if sum < core.TwoPartyLowerPairSum(g)-0.06 {
		t.Errorf("u(A1)+u(A2) = %v < %v", sum, core.TwoPartyLowerPairSum(g))
	}
}

func TestFixedOrderBaselineIsUnfair(t *testing.T) {
	// The fixed-order variant grants γ10 to the attacker corrupting the
	// first receiver — it is strictly less fair than ΠOpt-2SFE.
	g := core.StandardPayoff()
	p := NewFixedOrder(Swap(), 2)
	rep, err := core.EstimateUtility(p, adversary.NewLockAbort(2), g, swapSampler, 400, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Utility.MatchesWithin(g.G10, 0.03) {
		t.Errorf("fixed-order utility %v, want γ10 (events %v)", rep.Utility, rep.EventFreq)
	}
	opt, err := core.EstimateUtility(New(Swap()), adversary.NewAgen(), g, swapSampler, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rel := core.Compare(opt.Utility, rep.Utility, 0.05); rel != core.StrictlyFairer {
		t.Errorf("optimal vs fixed-order relation = %v", rel)
	}
}

func TestLockAbortEventSplit(t *testing.T) {
	// One-sided lock-abort vs ΠOpt-2SFE: E10 when the corrupted party is
	// drawn first (prob 1/2), E11 otherwise.
	g := core.StandardPayoff()
	p := New(Swap())
	rep, err := core.EstimateUtility(p, adversary.NewLockAbort(1), g, swapSampler, 800, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventFreq[core.E10] < 0.42 || rep.EventFreq[core.E10] > 0.58 {
		t.Errorf("E10 freq = %v, want ≈ 0.5 (events %v)", rep.EventFreq[core.E10], rep.EventFreq)
	}
	if rep.EventFreq[core.E11] < 0.42 || rep.EventFreq[core.E11] > 0.58 {
		t.Errorf("E11 freq = %v, want ≈ 0.5", rep.EventFreq[core.E11])
	}
}

func TestInvalidShareTriggersFallback(t *testing.T) {
	// A corrupted non-first party sending garbage in round 1 is detected:
	// the first party locally evaluates with the default input.
	p := NewFixedOrder(Swap(), 1) // party 1 receives first; corrupt party 2
	adv := &garbageSender{}
	tr, err := sim.Run(p, []sim.Value{uint64(5), uint64(6)}, adv, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := Swap().Eval(5, Swap().Default2)
	rec := tr.HonestOutputs[1]
	if !rec.OK || !sim.ValuesEqual(rec.Value, want) {
		t.Errorf("p1 output %+v, want defaulted %v", rec, want)
	}
	if oc := core.Classify(tr); oc.Event != core.E01 {
		t.Errorf("event = %v, want E01", oc.Event)
	}
}

// garbageSender corrupts p2 and replaces its round-1 opening with junk.
type garbageSender struct {
	adversary.Static
}

func (gs *garbageSender) Reset(ctx *sim.AdvContext) {
	gs.Static.Targets = []sim.PartyID{2}
	gs.Static.Reset(ctx)
}

func (gs *garbageSender) Act(round int, inboxes map[sim.PartyID][]sim.Message, rushed []sim.Message) []sim.Message {
	out := gs.Static.Act(round, inboxes, rushed)
	if round == 1 {
		for i := range out {
			out[i].Payload = "garbage"
		}
	}
	return out
}

func TestOutputRangeError(t *testing.T) {
	bad := Function{Name: "huge", Eval: func(x1, x2 uint64) uint64 { return ^uint64(0) }}
	p := New(bad)
	if _, err := sim.Run(p, []sim.Value{uint64(1), uint64(2)}, sim.Passive{}, 1); err == nil {
		t.Error("oversized output accepted")
	}
}

func TestNames(t *testing.T) {
	if New(Swap()).Name() != "2SFE-opt-swap" {
		t.Error(New(Swap()).Name())
	}
	if NewFixedOrder(Swap(), 2).Name() != "2SFE-fixed2-swap" {
		t.Error(NewFixedOrder(Swap(), 2).Name())
	}
}
