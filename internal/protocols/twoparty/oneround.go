package twoparty

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/crypto/share"
	"repro/internal/field"
	"repro/internal/sim"
)

// OneRound is the single-reconstruction-round protocol ruled out by
// Lemma 10: after the unfair SFE phase deals the authenticated sharing,
// both parties open their shares simultaneously in one round. A rushing
// adversary receives the honest opening, sends nothing, and reconstructs
// — earning γ10 with probability 1. It exists to demonstrate that two
// reconstruction rounds (Lemma 9) are necessary, not just sufficient.
type OneRound struct {
	Fn Function
}

var _ sim.Protocol = OneRound{}

// NewOneRound builds the protocol.
func NewOneRound(fn Function) OneRound { return OneRound{Fn: fn} }

// Name implements sim.Protocol.
func (p OneRound) Name() string { return "2SFE-oneround-" + p.Fn.Name }

// NumParties implements sim.Protocol.
func (OneRound) NumParties() int { return 2 }

// NumRounds implements sim.Protocol: the single simultaneous opening.
func (OneRound) NumRounds() int { return 1 }

// Func implements sim.Protocol.
func (p OneRound) Func(inputs []sim.Value) sim.Value { return Protocol{Fn: p.Fn}.Func(inputs) }

// DefaultInput implements sim.Protocol.
func (p OneRound) DefaultInput(id sim.PartyID) sim.Value {
	return Protocol{Fn: p.Fn}.DefaultInput(id)
}

// Setup implements sim.Protocol: deal the authenticated sharing (no
// order index — the opening is simultaneous).
func (p OneRound) Setup(inputs []sim.Value, rng *rand.Rand) ([]sim.Value, error) {
	y, ok := p.Func(inputs).(uint64)
	if !ok {
		return nil, errors.New("twoparty: non-integer function output")
	}
	if y >= field.Modulus {
		return nil, ErrOutputRange
	}
	s1, s2, err := share.AuthDeal(rng, field.Element(y))
	if err != nil {
		return nil, fmt.Errorf("twoparty: oneround setup: %w", err)
	}
	return []sim.Value{setupOut{Share: s1}, setupOut{Share: s2}}, nil
}

// NewParty implements sim.Protocol.
func (p OneRound) NewParty(id sim.PartyID, input sim.Value, out sim.Value, aborted bool, _ *rand.Rand) (sim.Party, error) {
	x, _ := input.(uint64)
	m := &oneRoundMachine{id: id, input: x, fn: p.Fn, setupAborted: aborted}
	if !aborted {
		so, ok := asSetupOut(out)
		if !ok {
			return nil, fmt.Errorf("twoparty: party %d: bad setup output %T", id, out)
		}
		m.share = so.Share
	}
	return m, nil
}

type oneRoundMachine struct {
	id           sim.PartyID
	input        uint64
	fn           Function
	setupAborted bool
	share        share.AuthShare
	result       uint64
	done         bool
	outBox       sim.Value

	// Message scratch, as in machine: one opening per run.
	open share.OpenMsg
	msgs [1]sim.Message
}

// Reinit implements sim.ReusableParty.
func (m *oneRoundMachine) Reinit(id sim.PartyID, input sim.Value, out sim.Value, aborted bool, _ *rand.Rand) bool {
	x, _ := input.(uint64)
	m.id, m.input, m.setupAborted = id, x, aborted
	m.share = share.AuthShare{}
	m.result, m.done, m.outBox = 0, false, nil
	if !aborted {
		so, ok := asSetupOut(out)
		if !ok {
			return false
		}
		m.share = so.Share
	}
	return true
}

// CopyFrom implements sim.PartyCopier.
func (m *oneRoundMachine) CopyFrom(src sim.Party) bool {
	s, ok := src.(*oneRoundMachine)
	if !ok {
		return false
	}
	*m = *s
	return true
}

func (m *oneRoundMachine) setResult(y uint64) {
	m.result, m.done = y, true
	m.outBox = y
}

func (m *oneRoundMachine) Round(round int, inbox []sim.Message) ([]sim.Message, error) {
	if m.setupAborted {
		if round == 1 && !m.done {
			if m.id == 1 {
				m.setResult(m.fn.Eval(m.input, m.fn.Default2))
			} else {
				m.setResult(m.fn.Eval(m.fn.Default1, m.input))
			}
		}
		return nil, nil
	}
	other := sim.PartyID(3 - int(m.id))
	switch round {
	case 1:
		m.open = m.share.Open()
		m.msgs[0] = sim.Message{From: m.id, To: other, Payload: &m.open}
		return m.msgs[:], nil
	case 2:
		for _, msg := range inbox {
			open, ok := asOpenMsg(msg.Payload)
			if !ok || msg.From != other {
				continue
			}
			if y, err := share.AuthReconstruct(m.share, open); err == nil {
				m.setResult(y.Uint64())
			}
		}
	}
	return nil, nil
}

func (m *oneRoundMachine) Output() (sim.Value, bool) {
	if !m.done {
		return nil, false
	}
	return m.outBox, true
}

func (m *oneRoundMachine) Clone() sim.Party { cp := *m; return &cp }
