package twoparty

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
)

func TestOneRoundHonestDelivers(t *testing.T) {
	p := NewOneRound(Swap())
	tr, err := sim.Run(p, []sim.Value{uint64(3), uint64(4)}, sim.Passive{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.AllHonestDelivered() {
		t.Fatalf("honest one-round run failed: %+v", tr.HonestOutputs)
	}
	if p.Name() != "2SFE-oneround-swap" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.NumParties() != 2 || p.NumRounds() != 1 {
		t.Error("shape")
	}
}

func TestOneRoundLemma10Attack(t *testing.T) {
	// The Lemma 10 rushing attack: withhold the single opening after
	// seeing the honest one — γ10 with probability 1 for either target,
	// via both the explicit aborter and the generic lock-abort.
	g := core.StandardPayoff()
	p := NewOneRound(Swap())
	for name, adv := range map[string]sim.Adversary{
		"abort-r1": adversary.NewAbortAt(1, 2),
		"lock":     adversary.NewLockAbort(2),
	} {
		rep, err := core.EstimateUtility(p, adv, g, swapSampler, 300, 2)
		if err != nil {
			t.Fatal(err)
		}
		if rep.EventFreq[core.E10] < 0.99 {
			t.Errorf("%s: E10 freq %v (events %v)", name, rep.EventFreq[core.E10], rep.EventFreq)
		}
	}
}

func TestOneRoundSetupAbortDefaults(t *testing.T) {
	p := NewOneRound(Swap())
	tr, err := sim.Run(p, []sim.Value{uint64(7), uint64(9)}, adversary.NewSetupAbort(2), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := Swap().Eval(7, Swap().Default2)
	if rec := tr.HonestOutputs[1]; !rec.OK || !sim.ValuesEqual(rec.Value, want) {
		t.Errorf("p1 output %+v, want defaulted %v", rec, want)
	}
	if oc := core.Classify(tr); oc.Event != core.E01 {
		t.Errorf("event %v, want E01", oc.Event)
	}
}

func TestOneRoundGarbageShareYieldsBot(t *testing.T) {
	p := NewOneRound(Swap())
	adv := &oneRoundGarbage{}
	tr, err := sim.Run(p, []sim.Value{uint64(5), uint64(6)}, adv, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rec := tr.HonestOutputs[1]; rec.OK {
		t.Errorf("garbage share accepted: %+v", rec)
	}
}

type oneRoundGarbage struct{ adversary.Static }

func (g *oneRoundGarbage) Reset(ctx *sim.AdvContext) {
	g.Static.Targets = []sim.PartyID{2}
	g.Static.Reset(ctx)
}

func (g *oneRoundGarbage) Act(round int, inboxes map[sim.PartyID][]sim.Message, rushed []sim.Message) []sim.Message {
	out := g.Static.Act(round, inboxes, rushed)
	for i := range out {
		out[i].Payload = "junk"
	}
	return out
}

func TestOneRoundOutputRangeError(t *testing.T) {
	bad := Function{Name: "huge", Eval: func(x1, x2 uint64) uint64 { return ^uint64(0) }}
	if _, err := sim.Run(NewOneRound(bad), []sim.Value{uint64(1), uint64(2)}, sim.Passive{}, 5); err == nil {
		t.Error("oversized output accepted")
	}
}

func TestBiasedOrderConstruction(t *testing.T) {
	p := NewBiasedOrder(Swap(), 0.25)
	if p.Name() != "2SFE-biased0.25-swap" {
		t.Errorf("Name = %q", p.Name())
	}
	// Empirically, p1 goes first about a quarter of the time: measure via
	// the one-sided lock-abort split (E10 for corrupt-p1 ≈ q).
	g := core.StandardPayoff()
	rep, err := core.EstimateUtility(p, adversary.NewLockAbort(1), g, swapSampler, 1500, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventFreq[core.E10] < 0.18 || rep.EventFreq[core.E10] > 0.32 {
		t.Errorf("E10 freq %v, want ≈ 0.25", rep.EventFreq[core.E10])
	}
}

func TestRegisterGobTypesIdempotent(t *testing.T) {
	RegisterGobTypes()
	RegisterGobTypes() // must not panic on re-registration of same types
}
