// Package twoparty implements ΠOpt-2SFE, the optimally ~γ-fair two-party
// SFE protocol of Section 4.1, plus a deliberately unfair fixed-order
// variant used as the comparison baseline in the experiments.
//
// The protocol evaluates a function f in two phases:
//
//  1. An adaptively secure but unfair SFE (the Π_GMW hybrid, here the
//     engine's Setup phase) computes f′: it evaluates y = f(x1, x2),
//     produces an authenticated two-out-of-two sharing ⟨y⟩ (Appendix A),
//     and draws a uniformly random index i ∈ {1, 2}. Party p_j receives
//     (⟨y⟩_j, i). If this phase aborts, the honest party substitutes the
//     default input for the corrupted party and computes f locally.
//
//  2. Two reconstruction rounds: the sharing is first reconstructed
//     toward p_i (round 1), then toward p_¬i (round 2). If p_¬i fails to
//     send a valid share in round 1, p_i computes f locally on the
//     default input; if p_i fails in round 2, p_¬i outputs ⊥.
//
// Theorem 3: no adversary earns more than (γ10+γ11)/2 + negl. Theorem 4:
// for the swap function this is tight for every protocol.
package twoparty

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/crypto/share"
	"repro/internal/field"
	"repro/internal/sim"
)

// Function is the two-party function the protocol evaluates. Outputs must
// fit in the field GF(2^61−1).
type Function struct {
	// Name labels the function in traces.
	Name string
	// Eval is the reference semantics (single global output, wlog).
	Eval func(x1, x2 uint64) uint64
	// Default1 and Default2 are the default inputs substituted for an
	// aborting party.
	Default1, Default2 uint64
}

// SwapBits is the input width of the swap function below.
const SwapBits = 30

// Swap is the paper's swap function f_swp(x1, x2) = (x2, x1), packed into
// a single global output x2·2^30 + x1 (Appendix A treats the multi-output
// case via the standard one-time-pad embedding; packing both halves into
// the global output is the same device). Theorem 4's lower bound is
// proved for this function.
func Swap() Function {
	return Function{
		Name: "swap",
		Eval: func(x1, x2 uint64) uint64 {
			mask := uint64(1)<<SwapBits - 1
			return (x2&mask)<<SwapBits | (x1 & mask)
		},
	}
}

// Millionaires is [x1 > x2] — a small-range function used by examples.
func Millionaires() Function {
	return Function{
		Name: "millionaires",
		Eval: func(x1, x2 uint64) uint64 {
			if x1 > x2 {
				return 1
			}
			return 0
		},
	}
}

// setupOut is one party's private output of the f′ hybrid.
type setupOut struct {
	Share share.AuthShare
	First sim.PartyID
}

// Protocol is ΠOpt-2SFE (FixedFirst == 0) or its unfair fixed-order
// variant (FixedFirst ∈ {1, 2}), which always reconstructs toward the
// same party first and therefore grants its best attacker γ10 — the
// baseline showing what optimality buys.
type Protocol struct {
	Fn Function
	// FixedFirst, when 1 or 2, pins the reconstruction order instead of
	// drawing i uniformly.
	FixedFirst int
	// FirstBias, when in (0, 1), draws i = 1 with that probability
	// instead of uniformly — the order-selection ablation knob. The
	// uniform choice q = 1/2 minimizes the best attacker's utility
	// max{q, 1−q}·γ10 + min{q, 1−q}·γ11 (experiment E13).
	FirstBias float64
}

var _ sim.Protocol = Protocol{}

// New returns the optimally fair protocol for fn.
func New(fn Function) Protocol { return Protocol{Fn: fn} }

// NewFixedOrder returns the unfair baseline reconstructing toward party
// first every time.
func NewFixedOrder(fn Function, first int) Protocol {
	return Protocol{Fn: fn, FixedFirst: first}
}

// NewBiasedOrder returns the ablation variant that reconstructs toward
// p1 first with probability q in (0, 1).
func NewBiasedOrder(fn Function, q float64) Protocol {
	return Protocol{Fn: fn, FirstBias: q}
}

// Name implements sim.Protocol.
func (p Protocol) Name() string {
	if p.FixedFirst != 0 {
		return fmt.Sprintf("2SFE-fixed%d-%s", p.FixedFirst, p.Fn.Name)
	}
	if p.FirstBias > 0 && p.FirstBias < 1 {
		return fmt.Sprintf("2SFE-biased%.2f-%s", p.FirstBias, p.Fn.Name)
	}
	return "2SFE-opt-" + p.Fn.Name
}

// NumParties implements sim.Protocol.
func (Protocol) NumParties() int { return 2 }

// NumRounds implements sim.Protocol: the two reconstruction rounds.
func (Protocol) NumRounds() int { return 2 }

// Func implements sim.Protocol.
func (p Protocol) Func(inputs []sim.Value) sim.Value {
	x1, _ := inputs[0].(uint64)
	x2, _ := inputs[1].(uint64)
	return p.Fn.Eval(x1, x2)
}

// DefaultInput implements sim.Protocol.
func (p Protocol) DefaultInput(id sim.PartyID) sim.Value {
	if id == 1 {
		return p.Fn.Default1
	}
	return p.Fn.Default2
}

// ErrOutputRange is returned when f's output does not fit in the field.
var ErrOutputRange = errors.New("twoparty: function output exceeds field modulus")

// Setup implements sim.Protocol: the f′ hybrid of phase 1.
func (p Protocol) Setup(inputs []sim.Value, rng *rand.Rand) ([]sim.Value, error) {
	y, ok := p.Func(inputs).(uint64)
	if !ok {
		return nil, errors.New("twoparty: non-integer function output")
	}
	if y >= field.Modulus {
		return nil, ErrOutputRange
	}
	s1, s2, err := share.AuthDeal(rng, field.Element(y))
	if err != nil {
		return nil, fmt.Errorf("twoparty: setup: %w", err)
	}
	first := sim.PartyID(1 + rng.Intn(2))
	if p.FirstBias > 0 && p.FirstBias < 1 {
		first = 2
		if rng.Float64() < p.FirstBias {
			first = 1
		}
	}
	if p.FixedFirst == 1 || p.FixedFirst == 2 {
		first = sim.PartyID(p.FixedFirst)
	}
	return []sim.Value{
		setupOut{Share: s1, First: first},
		setupOut{Share: s2, First: first},
	}, nil
}

// NewParty implements sim.Protocol.
func (p Protocol) NewParty(id sim.PartyID, input sim.Value, out sim.Value, aborted bool, _ *rand.Rand) (sim.Party, error) {
	x, _ := input.(uint64)
	m := &machine{id: id, input: x, fn: p.Fn, setupAborted: aborted}
	if !aborted {
		so, ok := out.(setupOut)
		if !ok {
			return nil, fmt.Errorf("twoparty: party %d: bad setup output %T", id, out)
		}
		m.share = so.Share
		m.first = so.First
	}
	return m, nil
}

type machine struct {
	id           sim.PartyID
	input        uint64
	fn           Function
	setupAborted bool

	share share.AuthShare
	first sim.PartyID

	result uint64
	done   bool
}

func (m *machine) other() sim.PartyID { return sim.PartyID(3 - int(m.id)) }

// localFallback evaluates f on the default input for the counterparty.
func (m *machine) localFallback() {
	if m.id == 1 {
		m.result = m.fn.Eval(m.input, m.fn.Default2)
	} else {
		m.result = m.fn.Eval(m.fn.Default1, m.input)
	}
	m.done = true
}

func (m *machine) Round(round int, inbox []sim.Message) ([]sim.Message, error) {
	if m.setupAborted {
		// Phase-1 abort: local evaluation with the default input.
		if round == 1 && !m.done {
			m.localFallback()
		}
		return nil, nil
	}
	switch round {
	case 1:
		// p_¬i opens its share toward p_i.
		if m.id != m.first {
			return []sim.Message{{From: m.id, To: m.other(), Payload: m.share.Open()}}, nil
		}
	case 2:
		// p_i reconstructs; on success it opens toward p_¬i, on failure
		// it computes f locally with the default input (second round
		// omitted).
		if m.id == m.first {
			y, ok := m.reconstruct(inbox)
			if !ok {
				m.localFallback()
				return nil, nil
			}
			m.result, m.done = y, true
			return []sim.Message{{From: m.id, To: m.other(), Payload: m.share.Open()}}, nil
		}
	case 3:
		// p_¬i reconstructs; on failure it outputs ⊥ (the output is
		// already out — only an ideal-world abort is simulatable).
		if m.id != m.first {
			if y, ok := m.reconstruct(inbox); ok {
				m.result, m.done = y, true
			}
		}
	}
	return nil, nil
}

func (m *machine) reconstruct(inbox []sim.Message) (uint64, bool) {
	for _, msg := range inbox {
		open, ok := msg.Payload.(share.OpenMsg)
		if !ok || msg.From != m.other() {
			continue
		}
		y, err := share.AuthReconstruct(m.share, open)
		if err != nil {
			return 0, false
		}
		return y.Uint64(), true
	}
	return 0, false
}

func (m *machine) Output() (sim.Value, bool) {
	if !m.done {
		return nil, false
	}
	return m.result, true
}

func (m *machine) Clone() sim.Party { cp := *m; return &cp }
