// Package twoparty implements ΠOpt-2SFE, the optimally ~γ-fair two-party
// SFE protocol of Section 4.1, plus a deliberately unfair fixed-order
// variant used as the comparison baseline in the experiments.
//
// The protocol evaluates a function f in two phases:
//
//  1. An adaptively secure but unfair SFE (the Π_GMW hybrid, here the
//     engine's Setup phase) computes f′: it evaluates y = f(x1, x2),
//     produces an authenticated two-out-of-two sharing ⟨y⟩ (Appendix A),
//     and draws a uniformly random index i ∈ {1, 2}. Party p_j receives
//     (⟨y⟩_j, i). If this phase aborts, the honest party substitutes the
//     default input for the corrupted party and computes f locally.
//
//  2. Two reconstruction rounds: the sharing is first reconstructed
//     toward p_i (round 1), then toward p_¬i (round 2). If p_¬i fails to
//     send a valid share in round 1, p_i computes f locally on the
//     default input; if p_i fails in round 2, p_¬i outputs ⊥.
//
// Theorem 3: no adversary earns more than (γ10+γ11)/2 + negl. Theorem 4:
// for the swap function this is tight for every protocol.
package twoparty

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/crypto/share"
	"repro/internal/field"
	"repro/internal/sim"
)

// Function is the two-party function the protocol evaluates. Outputs must
// fit in the field GF(2^61−1).
type Function struct {
	// Name labels the function in traces.
	Name string
	// Eval is the reference semantics (single global output, wlog).
	Eval func(x1, x2 uint64) uint64
	// Default1 and Default2 are the default inputs substituted for an
	// aborting party.
	Default1, Default2 uint64
}

// SwapBits is the input width of the swap function below.
const SwapBits = 30

// Swap is the paper's swap function f_swp(x1, x2) = (x2, x1), packed into
// a single global output x2·2^30 + x1 (Appendix A treats the multi-output
// case via the standard one-time-pad embedding; packing both halves into
// the global output is the same device). Theorem 4's lower bound is
// proved for this function.
func Swap() Function {
	return Function{
		Name: "swap",
		Eval: func(x1, x2 uint64) uint64 {
			mask := uint64(1)<<SwapBits - 1
			return (x2&mask)<<SwapBits | (x1 & mask)
		},
	}
}

// Millionaires is [x1 > x2] — a small-range function used by examples.
func Millionaires() Function {
	return Function{
		Name: "millionaires",
		Eval: func(x1, x2 uint64) uint64 {
			if x1 > x2 {
				return 1
			}
			return 0
		},
	}
}

// setupOut is one party's private output of the f′ hybrid.
type setupOut struct {
	Share share.AuthShare
	First sim.PartyID
}

// Protocol is ΠOpt-2SFE (FixedFirst == 0) or its unfair fixed-order
// variant (FixedFirst ∈ {1, 2}), which always reconstructs toward the
// same party first and therefore grants its best attacker γ10 — the
// baseline showing what optimality buys.
type Protocol struct {
	Fn Function
	// FixedFirst, when 1 or 2, pins the reconstruction order instead of
	// drawing i uniformly.
	FixedFirst int
	// FirstBias, when in (0, 1), draws i = 1 with that probability
	// instead of uniformly — the order-selection ablation knob. The
	// uniform choice q = 1/2 minimizes the best attacker's utility
	// max{q, 1−q}·γ10 + min{q, 1−q}·γ11 (experiment E13).
	FirstBias float64
}

var _ sim.Protocol = Protocol{}

// New returns the optimally fair protocol for fn.
func New(fn Function) Protocol { return Protocol{Fn: fn} }

// NewFixedOrder returns the unfair baseline reconstructing toward party
// first every time.
func NewFixedOrder(fn Function, first int) Protocol {
	return Protocol{Fn: fn, FixedFirst: first}
}

// NewBiasedOrder returns the ablation variant that reconstructs toward
// p1 first with probability q in (0, 1).
func NewBiasedOrder(fn Function, q float64) Protocol {
	return Protocol{Fn: fn, FirstBias: q}
}

// Name implements sim.Protocol.
func (p Protocol) Name() string {
	if p.FixedFirst != 0 {
		return fmt.Sprintf("2SFE-fixed%d-%s", p.FixedFirst, p.Fn.Name)
	}
	if p.FirstBias > 0 && p.FirstBias < 1 {
		return fmt.Sprintf("2SFE-biased%.2f-%s", p.FirstBias, p.Fn.Name)
	}
	return "2SFE-opt-" + p.Fn.Name
}

// NumParties implements sim.Protocol.
func (Protocol) NumParties() int { return 2 }

// NumRounds implements sim.Protocol: the two reconstruction rounds.
func (Protocol) NumRounds() int { return 2 }

// Func implements sim.Protocol.
func (p Protocol) Func(inputs []sim.Value) sim.Value {
	x1, _ := inputs[0].(uint64)
	x2, _ := inputs[1].(uint64)
	return p.Fn.Eval(x1, x2)
}

// DefaultInput implements sim.Protocol.
func (p Protocol) DefaultInput(id sim.PartyID) sim.Value {
	if id == 1 {
		return p.Fn.Default1
	}
	return p.Fn.Default2
}

// ErrOutputRange is returned when f's output does not fit in the field.
var ErrOutputRange = errors.New("twoparty: function output exceeds field modulus")

// setupCore is the shared body of Setup and the scratch evaluator: deal
// the authenticated sharing of y = f(effective inputs) and draw the
// reconstruction order.
func (p Protocol) setupCore(inputs []sim.Value, rng *rand.Rand) (s1, s2 share.AuthShare, first sim.PartyID, err error) {
	y, ok := p.Func(inputs).(uint64)
	if !ok {
		return s1, s2, 0, errors.New("twoparty: non-integer function output")
	}
	if y >= field.Modulus {
		return s1, s2, 0, ErrOutputRange
	}
	s1, s2, err = share.AuthDeal(rng, field.Element(y))
	if err != nil {
		return s1, s2, 0, fmt.Errorf("twoparty: setup: %w", err)
	}
	first = sim.PartyID(1 + rng.Intn(2))
	if p.FirstBias > 0 && p.FirstBias < 1 {
		first = 2
		if rng.Float64() < p.FirstBias {
			first = 1
		}
	}
	if p.FixedFirst == 1 || p.FixedFirst == 2 {
		first = sim.PartyID(p.FixedFirst)
	}
	return s1, s2, first, nil
}

// Setup implements sim.Protocol: the f′ hybrid of phase 1.
func (p Protocol) Setup(inputs []sim.Value, rng *rand.Rand) ([]sim.Value, error) {
	s1, s2, first, err := p.setupCore(inputs, rng)
	if err != nil {
		return nil, err
	}
	return []sim.Value{
		setupOut{Share: s1, First: first},
		setupOut{Share: s2, First: first},
	}, nil
}

// NewSetupScratch implements sim.ScratchSetupProtocol: a setup evaluator
// whose output slice and setupOut cells are reused across runs, so the
// estimation hot path allocates nothing per setup. The cells are boxed
// as pointers once at construction.
func (p Protocol) NewSetupScratch() func([]sim.Value, *rand.Rand) ([]sim.Value, error) {
	var cells [2]setupOut
	outs := []sim.Value{&cells[0], &cells[1]}
	return func(inputs []sim.Value, rng *rand.Rand) ([]sim.Value, error) {
		s1, s2, first, err := p.setupCore(inputs, rng)
		if err != nil {
			return nil, err
		}
		cells[0] = setupOut{Share: s1, First: first}
		cells[1] = setupOut{Share: s2, First: first}
		return outs, nil
	}
}

// asSetupOut unwraps a setup output delivered either by value (plain
// Setup) or as a pointer into scratch (NewSetupScratch).
func asSetupOut(v sim.Value) (setupOut, bool) {
	switch s := v.(type) {
	case setupOut:
		return s, true
	case *setupOut:
		return *s, true
	}
	return setupOut{}, false
}

// NewParty implements sim.Protocol.
func (p Protocol) NewParty(id sim.PartyID, input sim.Value, out sim.Value, aborted bool, _ *rand.Rand) (sim.Party, error) {
	x, _ := input.(uint64)
	m := &machine{id: id, input: x, fn: p.Fn, setupAborted: aborted}
	if !aborted {
		so, ok := asSetupOut(out)
		if !ok {
			return nil, fmt.Errorf("twoparty: party %d: bad setup output %T", id, out)
		}
		m.share = so.Share
		m.first = so.First
	}
	return m, nil
}

type machine struct {
	id           sim.PartyID
	input        uint64
	fn           Function
	setupAborted bool

	share share.AuthShare
	first sim.PartyID

	result uint64
	done   bool
	// outBox caches the boxed result so Output never allocates.
	outBox sim.Value

	// Message scratch: a machine opens its share at most once per run,
	// so one message cell and one payload cell suffice. The returned
	// slice and the payload pointer are machine-owned, per the Party
	// contract (valid until the next Round call).
	open share.OpenMsg
	msgs [1]sim.Message
}

// Reinit implements sim.ReusableParty: reset the machine in place for a
// new run, exactly as a fresh NewParty would configure it.
func (m *machine) Reinit(id sim.PartyID, input sim.Value, out sim.Value, aborted bool, _ *rand.Rand) bool {
	x, _ := input.(uint64)
	m.id, m.input, m.setupAborted = id, x, aborted
	m.share, m.first = share.AuthShare{}, 0
	m.result, m.done, m.outBox = 0, false, nil
	if !aborted {
		so, ok := asSetupOut(out)
		if !ok {
			return false // fall back to NewParty, which reports the defect
		}
		m.share, m.first = so.Share, so.First
	}
	return true
}

// CopyFrom implements sim.PartyCopier, so lookahead adversaries can
// reuse clone machines.
func (m *machine) CopyFrom(src sim.Party) bool {
	s, ok := src.(*machine)
	if !ok {
		return false
	}
	*m = *s
	return true
}

// setResult records the machine's final output, boxing it once.
func (m *machine) setResult(y uint64) {
	m.result, m.done = y, true
	m.outBox = y
}

// openMsg prepares the single opening message toward the counterparty.
func (m *machine) openMsg() []sim.Message {
	m.open = m.share.Open()
	m.msgs[0] = sim.Message{From: m.id, To: m.other(), Payload: &m.open}
	return m.msgs[:]
}

func (m *machine) other() sim.PartyID { return sim.PartyID(3 - int(m.id)) }

// localFallback evaluates f on the default input for the counterparty.
func (m *machine) localFallback() {
	if m.id == 1 {
		m.setResult(m.fn.Eval(m.input, m.fn.Default2))
	} else {
		m.setResult(m.fn.Eval(m.fn.Default1, m.input))
	}
}

func (m *machine) Round(round int, inbox []sim.Message) ([]sim.Message, error) {
	if m.setupAborted {
		// Phase-1 abort: local evaluation with the default input.
		if round == 1 && !m.done {
			m.localFallback()
		}
		return nil, nil
	}
	switch round {
	case 1:
		// p_¬i opens its share toward p_i.
		if m.id != m.first {
			return m.openMsg(), nil
		}
	case 2:
		// p_i reconstructs; on success it opens toward p_¬i, on failure
		// it computes f locally with the default input (second round
		// omitted).
		if m.id == m.first {
			y, ok := m.reconstruct(inbox)
			if !ok {
				m.localFallback()
				return nil, nil
			}
			m.setResult(y)
			return m.openMsg(), nil
		}
	case 3:
		// p_¬i reconstructs; on failure it outputs ⊥ (the output is
		// already out — only an ideal-world abort is simulatable).
		if m.id != m.first {
			if y, ok := m.reconstruct(inbox); ok {
				m.setResult(y)
			}
		}
	}
	return nil, nil
}

// asOpenMsg unwraps an opening payload, delivered as a pointer into the
// sender's scratch (the hot path) or by value (hand-built messages, gob
// decodes of old recordings).
func asOpenMsg(payload any) (share.OpenMsg, bool) {
	switch o := payload.(type) {
	case *share.OpenMsg:
		return *o, true
	case share.OpenMsg:
		return o, true
	}
	return share.OpenMsg{}, false
}

func (m *machine) reconstruct(inbox []sim.Message) (uint64, bool) {
	for _, msg := range inbox {
		open, ok := asOpenMsg(msg.Payload)
		if !ok || msg.From != m.other() {
			continue
		}
		y, err := share.AuthReconstruct(m.share, open)
		if err != nil {
			return 0, false
		}
		return y.Uint64(), true
	}
	return 0, false
}

func (m *machine) Output() (sim.Value, bool) {
	if !m.done {
		return nil, false
	}
	return m.outBox, true
}

func (m *machine) Clone() sim.Party { cp := *m; return &cp }
