package multiparty

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/crypto/mac"
	"repro/internal/crypto/share"
	"repro/internal/field"
	"repro/internal/sim"
)

// GMWHalf is Π_GMW^{1/2} (Lemma 17): the traditionally fair
// honest-majority protocol. Its hybrid computes a ⌈n/2⌉-out-of-n
// verifiable secret sharing of the output, which is then publicly
// reconstructed by a single broadcast round.
//
//   - t < ⌈n/2⌉ corruptions: full security including fairness and
//     guaranteed output delivery — the coalition can neither learn the
//     output early nor block the honest majority's reconstruction
//     (best utility γ11, and the setup phase is not even abortable).
//   - t ≥ ⌈n/2⌉: the coalition holds enough shares to reconstruct
//     privately and enough weight to block the public reconstruction —
//     the attacker earns γ10 with probability 1.
//
// Consequently the per-t utility profile is a step function and, for
// even n, the utility sum over t = 1..n−1 strictly exceeds the balanced
// bound (n−1)(γ10+γ11)/2: traditional fairness is not utility-balanced.
type GMWHalf struct {
	Fn Function
}

var (
	_ sim.Protocol         = GMWHalf{}
	_ sim.SetupAbortPolicy = GMWHalf{}
)

// NewGMWHalf builds Π_GMW^{1/2} for fn.
func NewGMWHalf(fn Function) GMWHalf { return GMWHalf{Fn: fn} }

// Name implements sim.Protocol.
func (p GMWHalf) Name() string { return "nSFE-gmw12-" + p.Fn.Name }

// NumParties implements sim.Protocol.
func (p GMWHalf) NumParties() int { return p.Fn.N }

// NumRounds implements sim.Protocol: the public reconstruction round.
func (GMWHalf) NumRounds() int { return 1 }

// Threshold is the reconstruction threshold ⌈n/2⌉.
func (p GMWHalf) Threshold() int { return (p.Fn.N + 1) / 2 }

// SetupAbortable implements sim.SetupAbortPolicy: the honest-majority
// hybrid guarantees output delivery below n/2 corruptions.
func (p GMWHalf) SetupAbortable(corrupted int) bool {
	return corrupted >= p.Threshold()
}

// Func implements sim.Protocol.
func (p GMWHalf) Func(inputs []sim.Value) sim.Value {
	xs := make([]uint64, len(inputs))
	for i, v := range inputs {
		xs[i], _ = v.(uint64)
	}
	return p.Fn.Eval(xs)
}

// DefaultInput implements sim.Protocol.
func (p GMWHalf) DefaultInput(id sim.PartyID) sim.Value {
	if int(id) >= 1 && int(id) <= len(p.Fn.Defaults) {
		return p.Fn.Defaults[id-1]
	}
	return uint64(0)
}

// gmwSetupOut is one party's output of the VSS hybrid.
type gmwSetupOut struct {
	Share share.VerifiableShare
	Key   mac.ByteKey
	T     int
}

// shareMsg is the broadcast of the reconstruction round.
type shareMsg struct {
	Share share.VerifiableShare
}

// Setup implements sim.Protocol: deal the output verifiably.
func (p GMWHalf) Setup(inputs []sim.Value, rng *rand.Rand) ([]sim.Value, error) {
	y, ok := p.Func(inputs).(uint64)
	if !ok {
		return nil, errors.New("multiparty: non-integer function output")
	}
	if y >= field.Modulus {
		return nil, ErrOutputRange
	}
	vs, err := share.VerifiableDeal(rng, field.Element(y), p.Threshold(), p.Fn.N)
	if err != nil {
		return nil, fmt.Errorf("multiparty: gmw setup: %w", err)
	}
	outs := make([]sim.Value, p.Fn.N)
	for i := range outs {
		outs[i] = gmwSetupOut{Share: vs.Shares[i], Key: vs.Key, T: vs.T}
	}
	return outs, nil
}

// NewParty implements sim.Protocol.
func (p GMWHalf) NewParty(id sim.PartyID, _ sim.Value, out sim.Value, aborted bool, _ *rand.Rand) (sim.Party, error) {
	m := &gmwMachine{id: id, aborted: aborted}
	if !aborted {
		so, ok := out.(gmwSetupOut)
		if !ok {
			return nil, fmt.Errorf("multiparty: party %d: bad setup output %T", id, out)
		}
		m.setup = so
	}
	return m, nil
}

type gmwMachine struct {
	id      sim.PartyID
	aborted bool
	setup   gmwSetupOut
	result  uint64
	done    bool
}

func (m *gmwMachine) Round(round int, inbox []sim.Message) ([]sim.Message, error) {
	if m.aborted {
		return nil, nil
	}
	switch round {
	case 1:
		return []sim.Message{{From: m.id, To: sim.Broadcast, Payload: shareMsg{Share: m.setup.Share}}}, nil
	case 2:
		announced := []share.VerifiableShare{m.setup.Share}
		for _, msg := range inbox {
			if sm, ok := msg.Payload.(shareMsg); ok {
				announced = append(announced, sm.Share)
			}
		}
		y, err := share.VerifiableReconstruct(m.setup.Key, m.setup.T, announced)
		if err != nil {
			return nil, nil // blocked reconstruction → ⊥
		}
		m.result, m.done = y.Uint64(), true
	}
	return nil, nil
}

func (m *gmwMachine) Output() (sim.Value, bool) {
	if !m.done {
		return nil, false
	}
	return m.result, true
}

func (m *gmwMachine) Clone() sim.Party { cp := *m; return &cp }
