package multiparty

import (
	"fmt"
	"math/rand"

	"repro/internal/crypto/sig"
	"repro/internal/sim"
)

// Lemma18 is the artificial protocol of Lemma 18 — optimally ~γ-fair but
// NOT utility-balanced. After the F_priv-sfe^⊥ phase (as in ΠOpt-nSFE):
//
//	round 1: every party sends the value "0" to all other parties;
//	round 2: the output holder p_{i*}: if it received only 0s it
//	         broadcasts the signed output; otherwise it tosses a coin and
//	         either broadcasts (heads) or sends the output only to the
//	         parties that did NOT send a 0 (tails);
//	round 3: every party that received a validly signed output adopts it.
//
// A single corrupted party that sends "1" instead of "0" earns
// 1/n·γ10 + (n−1)/n·(γ10+γ11)/2 (the Lemma18Attacker below), pushing the
// per-t utility sum above the balanced bound while the sup over all t
// stays at the optimal ((n−1)γ10 + γ11)/n.
type Lemma18 struct {
	Fn Function
}

var _ sim.Protocol = Lemma18{}

// NewLemma18 builds the protocol for fn.
func NewLemma18(fn Function) Lemma18 { return Lemma18{Fn: fn} }

// Name implements sim.Protocol.
func (p Lemma18) Name() string { return "nSFE-lemma18-" + p.Fn.Name }

// NumParties implements sim.Protocol.
func (p Lemma18) NumParties() int { return p.Fn.N }

// NumRounds implements sim.Protocol.
func (Lemma18) NumRounds() int { return 2 }

// Func implements sim.Protocol.
func (p Lemma18) Func(inputs []sim.Value) sim.Value { return OptN{Fn: p.Fn}.Func(inputs) }

// DefaultInput implements sim.Protocol.
func (p Lemma18) DefaultInput(id sim.PartyID) sim.Value {
	return OptN{Fn: p.Fn}.DefaultInput(id)
}

// Setup implements sim.Protocol: identical to ΠOpt-nSFE's F_priv-sfe^⊥.
func (p Lemma18) Setup(inputs []sim.Value, rng *rand.Rand) ([]sim.Value, error) {
	return OptN{Fn: p.Fn}.Setup(inputs, rng)
}

// zeroMsg is the round-1 token; NonZero marks the Lemma 18 deviation.
type zeroMsg struct {
	NonZero bool
}

// NewParty implements sim.Protocol. The holder's coin is drawn here
// (Clone safety).
func (p Lemma18) NewParty(id sim.PartyID, _ sim.Value, out sim.Value, aborted bool, rng *rand.Rand) (sim.Party, error) {
	m := &lemma18Machine{id: id, n: p.Fn.N, aborted: aborted, coinHeads: rng.Intn(2) == 0}
	if !aborted {
		so, ok := out.(optnSetupOut)
		if !ok {
			return nil, fmt.Errorf("multiparty: party %d: bad setup output %T", id, out)
		}
		m.setup = so
	}
	return m, nil
}

type lemma18Machine struct {
	id        sim.PartyID
	n         int
	aborted   bool
	coinHeads bool
	setup     optnSetupOut

	nonZeroSenders map[sim.PartyID]bool
	result         uint64
	done           bool
}

func (m *lemma18Machine) Round(round int, inbox []sim.Message) ([]sim.Message, error) {
	if m.aborted {
		return nil, nil
	}
	switch round {
	case 1:
		// Everybody sends "0" to everybody else.
		msgs := make([]sim.Message, 0, m.n-1)
		for id := sim.PartyID(1); id <= sim.PartyID(m.n); id++ {
			if id != m.id {
				msgs = append(msgs, sim.Message{From: m.id, To: id, Payload: zeroMsg{}})
			}
		}
		return msgs, nil
	case 2:
		m.nonZeroSenders = make(map[sim.PartyID]bool)
		for _, msg := range inbox {
			if zm, ok := msg.Payload.(zeroMsg); ok && zm.NonZero {
				m.nonZeroSenders[msg.From] = true
			}
		}
		if !m.setup.HasOutput {
			return nil, nil
		}
		// The holder adopts its own value either way.
		m.result, m.done = m.setup.Y, true
		payload := outMsg{HasOutput: true, Y: m.setup.Y, Sigma: m.setup.Sigma}
		if len(m.nonZeroSenders) == 0 || m.coinHeads {
			return []sim.Message{{From: m.id, To: sim.Broadcast, Payload: payload}}, nil
		}
		// Tails: send the output only to the non-zero senders.
		var msgs []sim.Message
		for id := range m.nonZeroSenders {
			msgs = append(msgs, sim.Message{From: m.id, To: id, Payload: payload})
		}
		return msgs, nil
	case 3:
		for _, msg := range inbox {
			om, ok := msg.Payload.(outMsg)
			if !ok || !om.HasOutput {
				continue
			}
			if sig.Ver(m.setup.VK, encodeOutput(om.Y), om.Sigma) {
				m.result, m.done = om.Y, true
				return nil, nil
			}
		}
	}
	return nil, nil
}

func (m *lemma18Machine) Output() (sim.Value, bool) {
	if !m.done {
		return nil, false
	}
	return m.result, true
}

func (m *lemma18Machine) Clone() sim.Party {
	cp := *m
	if m.nonZeroSenders != nil {
		cp.nonZeroSenders = make(map[sim.PartyID]bool, len(m.nonZeroSenders))
		for k, v := range m.nonZeroSenders {
			cp.nonZeroSenders[k] = v
		}
	}
	return &cp
}

// Lemma18Attacker is the single-corruption strategy from the proof of
// Lemma 18: corrupt one party; if it is the output holder, abort having
// learned the output (E10); otherwise send "1" instead of "0" and hope
// the holder's coin lands tails, in which case only the corrupted party
// receives the output (E10 again) — heads gives everyone the output
// (E11).
type Lemma18Attacker struct {
	target    sim.PartyID
	ctx       *sim.AdvContext
	setupOut  optnSetupOut
	hasSetup  bool
	learned   sim.Value
	learnedOK bool
}

var (
	_ sim.Adversary       = (*Lemma18Attacker)(nil)
	_ sim.AdversaryCloner = (*Lemma18Attacker)(nil)
)

// NewLemma18Attacker corrupts target.
func NewLemma18Attacker(target sim.PartyID) *Lemma18Attacker {
	return &Lemma18Attacker{target: target}
}

// CloneAdversary implements sim.AdversaryCloner.
func (a *Lemma18Attacker) CloneAdversary() sim.Adversary {
	return NewLemma18Attacker(a.target)
}

// Reset implements sim.Adversary.
func (a *Lemma18Attacker) Reset(ctx *sim.AdvContext) {
	a.ctx = ctx
	a.setupOut, a.hasSetup = optnSetupOut{}, false
	a.learned, a.learnedOK = nil, false
}

// InitialCorruptions implements sim.Adversary.
func (a *Lemma18Attacker) InitialCorruptions() []sim.PartyID { return []sim.PartyID{a.target} }

// SubstituteInput implements sim.Adversary.
func (a *Lemma18Attacker) SubstituteInput(_ sim.PartyID, orig sim.Value) sim.Value { return orig }

// ObserveSetup implements sim.Adversary: never aborts the hybrid.
func (a *Lemma18Attacker) ObserveSetup(map[sim.PartyID]sim.Value) bool { return false }

// CorruptBefore implements sim.Adversary.
func (a *Lemma18Attacker) CorruptBefore(int) []sim.PartyID { return nil }

// OnCorrupt implements sim.Adversary: capture the setup output.
func (a *Lemma18Attacker) OnCorrupt(_ sim.PartyID, _ sim.Party, setupOut sim.Value) {
	if so, ok := setupOut.(optnSetupOut); ok {
		a.setupOut, a.hasSetup = so, true
	}
}

// Act implements sim.Adversary.
func (a *Lemma18Attacker) Act(round int, inboxes map[sim.PartyID][]sim.Message, rushed []sim.Message) []sim.Message {
	if a.hasSetup && a.setupOut.HasOutput {
		// Corrupted the holder: learn and abort immediately.
		a.learned, a.learnedOK = a.setupOut.Y, true
		return nil
	}
	if round == 1 {
		// Send "1" to everybody else.
		var msgs []sim.Message
		n := a.ctx.Protocol.NumParties()
		for id := sim.PartyID(1); id <= sim.PartyID(n); id++ {
			if id != a.target {
				msgs = append(msgs, sim.Message{From: a.target, To: id, Payload: zeroMsg{NonZero: true}})
			}
		}
		return msgs
	}
	// Watch for the (direct or broadcast) output delivery.
	for _, msg := range append(append([]sim.Message(nil), inboxes[a.target]...), rushed...) {
		if om, ok := msg.Payload.(outMsg); ok && om.HasOutput {
			a.learned, a.learnedOK = om.Y, true
		}
	}
	return nil
}

// Learned implements sim.Adversary.
func (a *Lemma18Attacker) Learned() (sim.Value, bool) { return a.learned, a.learnedOK }
