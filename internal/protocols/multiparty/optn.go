package multiparty

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/crypto/sig"
	"repro/internal/field"
	"repro/internal/sim"
)

// OptN is ΠOpt-nSFE: phase 1 evaluates the private-output functionality
// F_priv-sfe^⊥ (a uniformly random party p_{i*} receives the output y
// together with a signature σ on it; everyone receives the verification
// key), and phase 2 is a single broadcast round in which every party
// announces its private value; a validly signed broadcast value is
// adopted, otherwise everyone aborts.
//
// Lemma 11: every t-adversary earns at most (t·γ10 + (n−t)·γ11)/n.
// Lemma 13: for the concatenation function, the mixed all-but-one
// adversary earns ((n−1)·γ10 + γ11)/n, so OptN is optimally ~γ-fair; by
// Lemmas 14/16 it is also utility-balanced.
type OptN struct {
	Fn Function
}

var _ sim.Protocol = OptN{}

// NewOptN builds ΠOpt-nSFE for fn.
func NewOptN(fn Function) OptN { return OptN{Fn: fn} }

// Name implements sim.Protocol.
func (p OptN) Name() string { return "nSFE-opt-" + p.Fn.Name }

// NumParties implements sim.Protocol.
func (p OptN) NumParties() int { return p.Fn.N }

// NumRounds implements sim.Protocol: the single broadcast round.
func (OptN) NumRounds() int { return 1 }

// Func implements sim.Protocol.
func (p OptN) Func(inputs []sim.Value) sim.Value {
	xs := make([]uint64, len(inputs))
	for i, v := range inputs {
		xs[i], _ = v.(uint64)
	}
	return p.Fn.Eval(xs)
}

// DefaultInput implements sim.Protocol.
func (p OptN) DefaultInput(id sim.PartyID) sim.Value {
	if int(id) >= 1 && int(id) <= len(p.Fn.Defaults) {
		return p.Fn.Defaults[id-1]
	}
	return uint64(0)
}

// optnSetupOut is F_priv-sfe^⊥'s private output for one party.
type optnSetupOut struct {
	// HasOutput marks the randomly chosen p_{i*}.
	HasOutput bool
	Y         uint64
	Sigma     sig.Signature
	VK        sig.VerificationKey
}

// outMsg is the broadcast of phase 2.
type outMsg struct {
	HasOutput bool
	Y         uint64
	Sigma     sig.Signature
}

// ErrOutputRange is returned when f's output does not fit the field.
var ErrOutputRange = errors.New("multiparty: function output exceeds field modulus")

// Setup implements sim.Protocol: F_priv-sfe^⊥ (Appendix B).
func (p OptN) Setup(inputs []sim.Value, rng *rand.Rand) ([]sim.Value, error) {
	y, ok := p.Func(inputs).(uint64)
	if !ok {
		return nil, errors.New("multiparty: non-integer function output")
	}
	if y >= field.Modulus {
		return nil, ErrOutputRange
	}
	vk, sk, err := sig.Gen(rng)
	if err != nil {
		return nil, fmt.Errorf("multiparty: setup: %w", err)
	}
	sigma, err := sig.Sign(sk, encodeOutput(y))
	if err != nil {
		return nil, fmt.Errorf("multiparty: setup: %w", err)
	}
	istar := rng.Intn(p.Fn.N)
	outs := make([]sim.Value, p.Fn.N)
	for i := range outs {
		so := optnSetupOut{VK: vk}
		if i == istar {
			so.HasOutput, so.Y, so.Sigma = true, y, sigma
		}
		outs[i] = so
	}
	return outs, nil
}

// NewParty implements sim.Protocol.
func (p OptN) NewParty(id sim.PartyID, _ sim.Value, out sim.Value, aborted bool, _ *rand.Rand) (sim.Party, error) {
	m := &optnMachine{id: id, aborted: aborted}
	if !aborted {
		so, ok := out.(optnSetupOut)
		if !ok {
			return nil, fmt.Errorf("multiparty: party %d: bad setup output %T", id, out)
		}
		m.setup = so
	}
	return m, nil
}

type optnMachine struct {
	id      sim.PartyID
	aborted bool
	setup   optnSetupOut
	result  uint64
	done    bool
}

func (m *optnMachine) Round(round int, inbox []sim.Message) ([]sim.Message, error) {
	if m.aborted {
		// "If Π_GMW aborts then ΠOpt-nSFE also aborts."
		return nil, nil
	}
	switch round {
	case 1:
		return []sim.Message{{From: m.id, To: sim.Broadcast, Payload: outMsg{
			HasOutput: m.setup.HasOutput,
			Y:         m.setup.Y,
			Sigma:     m.setup.Sigma,
		}}}, nil
	case 2:
		for _, msg := range inbox {
			om, ok := msg.Payload.(outMsg)
			if !ok || !om.HasOutput {
				continue
			}
			if sig.Ver(m.setup.VK, encodeOutput(om.Y), om.Sigma) {
				m.result, m.done = om.Y, true
				return nil, nil
			}
		}
	}
	return nil, nil
}

func (m *optnMachine) Output() (sim.Value, bool) {
	if !m.done {
		return nil, false
	}
	return m.result, true
}

func (m *optnMachine) Clone() sim.Party { cp := *m; return &cp }

func encodeOutput(y uint64) []byte {
	return field.Element(y).Bytes()
}
