package multiparty

import "encoding/gob"

// RegisterGobTypes registers the multi-party protocols' wire payloads,
// setup outputs, and output type with encoding/gob, for running them
// over the transport package's TCP sessions. Safe to call multiple
// times.
func RegisterGobTypes() {
	gob.Register(optnSetupOut{})
	gob.Register(outMsg{})
	gob.Register(gmwSetupOut{})
	gob.Register(shareMsg{})
	gob.Register(zeroMsg{})
	gob.Register(uint64(0))
}
