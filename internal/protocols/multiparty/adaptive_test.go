package multiparty

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// chaser is an adaptive adversary against ΠOpt-nSFE: it stays out during
// the setup, watches the round-1 broadcasts, and corrupts the output
// holder the moment its broadcast appears. The attack is futile — the
// broadcast is already on the wire when the holder is identified — which
// is the adaptive-security content of Lemma 11's simulator: corrupting
// p_{i*} late yields no unfair advantage.
type chaser struct {
	ctx       *sim.AdvContext
	target    sim.PartyID
	learned   sim.Value
	learnedOK bool
}

var _ sim.Adversary = (*chaser)(nil)

func (c *chaser) Reset(ctx *sim.AdvContext) {
	c.ctx, c.target = ctx, 0
	c.learned, c.learnedOK = nil, false
}
func (c *chaser) InitialCorruptions() []sim.PartyID                    { return nil }
func (c *chaser) SubstituteInput(_ sim.PartyID, v sim.Value) sim.Value { return v }
func (c *chaser) ObserveSetup(map[sim.PartyID]sim.Value) bool          { return false }

func (c *chaser) CorruptBefore(round int) []sim.PartyID {
	if round == 2 && c.target != 0 {
		return []sim.PartyID{c.target}
	}
	return nil
}

func (c *chaser) OnCorrupt(_ sim.PartyID, _ sim.Party, setupOut sim.Value) {
	if so, ok := setupOut.(optnSetupOut); ok && so.HasOutput {
		c.learned, c.learnedOK = so.Y, true
	}
}

func (c *chaser) Act(_ int, _ map[sim.PartyID][]sim.Message, rushed []sim.Message) []sim.Message {
	for _, m := range rushed {
		if om, ok := m.Payload.(outMsg); ok && om.HasOutput && c.target == 0 {
			c.target = m.From // found the holder — corrupt it next round
		}
	}
	return nil
}

func (c *chaser) Learned() (sim.Value, bool) { return c.learned, c.learnedOK }

func TestAdaptiveChaserCannotBeatStaticBound(t *testing.T) {
	// The chaser always identifies and corrupts p_{i*}, learning the
	// output — but every honest party already received the broadcast, so
	// the runs end in E11, matching the t=1 static profile rather than
	// beating it.
	g := core.StandardPayoff()
	n := 4
	p := NewOptN(testFn(t, n))
	rep, err := core.EstimateUtility(p, &chaser{}, g, sampler(n), 500, 77)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventFreq[core.E10] > 0.01 {
		t.Errorf("adaptive chase achieved E10 freq %v — should be impossible", rep.EventFreq[core.E10])
	}
	if rep.Utility.Mean > core.MultiPartyTBound(g, n, 1)+0.05 {
		t.Errorf("adaptive utility %v exceeds the t=1 static bound %v",
			rep.Utility.Mean, core.MultiPartyTBound(g, n, 1))
	}
	// It does learn (corrupting the holder reveals the output) — the
	// point is that learning late is worthless.
	if rep.EventFreq[core.E11] < 0.9 {
		t.Errorf("chaser should complete in E11, events %v", rep.EventFreq)
	}
}
