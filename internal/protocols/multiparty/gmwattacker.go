package multiparty

import (
	"repro/internal/crypto/mac"
	"repro/internal/crypto/share"
	"repro/internal/sim"
)

// GMWSetupAttacker is the canonical attack on Π_GMW^{1/2} above the
// honest-majority threshold (Lemma 17): corrupt t parties; when the
// hybrid hands out the verifiable shares, reconstruct the output from the
// coalition's t ≥ ⌈n/2⌉ shares and abort the (merely
// secure-with-abort, once the honest majority is lost) setup protocol —
// the honest parties never receive their shares, E10. Below the
// threshold the shares reveal nothing and the setup is robust, so the
// strategy simply plays honestly (E11).
type GMWSetupAttacker struct {
	targets   []sim.PartyID
	machines  map[sim.PartyID]sim.Party
	learned   sim.Value
	learnedOK bool
}

var (
	_ sim.Adversary       = (*GMWSetupAttacker)(nil)
	_ sim.AdversaryCloner = (*GMWSetupAttacker)(nil)
)

// NewGMWSetupAttacker corrupts the given parties.
func NewGMWSetupAttacker(targets ...sim.PartyID) *GMWSetupAttacker {
	return &GMWSetupAttacker{targets: targets}
}

// CloneAdversary implements sim.AdversaryCloner.
func (a *GMWSetupAttacker) CloneAdversary() sim.Adversary {
	return NewGMWSetupAttacker(a.targets...)
}

// Reset implements sim.Adversary.
func (a *GMWSetupAttacker) Reset(*sim.AdvContext) {
	a.machines = make(map[sim.PartyID]sim.Party)
	a.learned, a.learnedOK = nil, false
}

// InitialCorruptions implements sim.Adversary.
func (a *GMWSetupAttacker) InitialCorruptions() []sim.PartyID { return a.targets }

// SubstituteInput implements sim.Adversary.
func (a *GMWSetupAttacker) SubstituteInput(_ sim.PartyID, orig sim.Value) sim.Value { return orig }

// ObserveSetup implements sim.Adversary: reconstruct from the coalition's
// shares if they reach the threshold, then abort the setup. (The engine
// consults the protocol's SetupAbortPolicy, so the abort only takes
// effect once the honest majority is actually lost.)
func (a *GMWSetupAttacker) ObserveSetup(outputs map[sim.PartyID]sim.Value) bool {
	var announced []share.VerifiableShare
	var key mac.ByteKey
	threshold := 0
	for _, v := range outputs {
		so, ok := v.(gmwSetupOut)
		if !ok {
			return false // not Π_GMW^{1/2}: do nothing
		}
		announced = append(announced, so.Share)
		key, threshold = so.Key, so.T
	}
	if len(announced) < threshold {
		return false
	}
	y, err := share.VerifiableReconstruct(key, threshold, announced)
	if err != nil {
		return false
	}
	a.learned, a.learnedOK = y.Uint64(), true
	return true
}

// CorruptBefore implements sim.Adversary.
func (a *GMWSetupAttacker) CorruptBefore(int) []sim.PartyID { return nil }

// OnCorrupt implements sim.Adversary.
func (a *GMWSetupAttacker) OnCorrupt(id sim.PartyID, m sim.Party, _ sim.Value) {
	if m != nil {
		a.machines[id] = m
	}
}

// Act implements sim.Adversary: silent after a successful setup attack,
// honest otherwise.
func (a *GMWSetupAttacker) Act(round int, inboxes map[sim.PartyID][]sim.Message, _ []sim.Message) []sim.Message {
	if a.learnedOK {
		return nil
	}
	var out []sim.Message
	for _, id := range a.targets {
		m := a.machines[id]
		if m == nil {
			continue
		}
		msgs, err := m.Round(round, inboxes[id])
		if err != nil {
			continue
		}
		for _, msg := range msgs {
			msg.From = id
			out = append(out, msg)
		}
		if v, ok := m.Output(); ok && !a.learnedOK {
			a.learned, a.learnedOK = v, true
		}
	}
	return out
}

// Learned implements sim.Adversary.
func (a *GMWSetupAttacker) Learned() (sim.Value, bool) { return a.learned, a.learnedOK }
