// Package multiparty implements the paper's n-party protocols:
//
//   - OptN — ΠOpt-nSFE (Section 4.2, Appendix B), the optimally ~γ-fair
//     and utility-balanced protocol built on the private-output hybrid
//     F_priv-sfe^⊥ (a random party receives the signed output) and one
//     broadcast round.
//   - GMWHalf — Π_GMW^{1/2} (Lemma 17), the traditionally fair
//     honest-majority protocol built on a ⌈n/2⌉-out-of-n verifiable
//     sharing of the output; fully secure below n/2 corruptions but
//     maximally unfair above, hence NOT utility-balanced for even n.
//   - Lemma18 — the artificial protocol of Lemma 18: optimally ~γ-fair
//     yet not utility-balanced (a single corruption can be parlayed into
//     extra utility through the "send 1 instead of 0" deviation).
//   - Hybrid (Π0, Appendix B.1) — runs GMWHalf for odd n and OptN for
//     even n: utility-balanced but not optimally fair.
package multiparty

import "fmt"

// Function is the n-party function under evaluation. Outputs must fit in
// GF(2^61−1).
type Function struct {
	// Name labels the function in traces.
	Name string
	// N is the number of parties.
	N int
	// Eval is the reference semantics (single global output, wlog).
	Eval func(xs []uint64) uint64
	// Defaults are the per-party default inputs.
	Defaults []uint64
}

// Concat is the paper's concatenation function f(x1,…,xn) = x1‖…‖xn
// (Lemmas 12/13/15/16), with each party contributing `bits` bits packed
// into the global output. n·bits must stay below the field width (61).
func Concat(n, bits int) (Function, error) {
	if n < 2 || bits <= 0 || n*bits > 60 {
		return Function{}, fmt.Errorf("multiparty: concat needs n ≥ 2, bits > 0, n·bits ≤ 60; got n=%d bits=%d", n, bits)
	}
	mask := uint64(1)<<bits - 1
	return Function{
		Name: fmt.Sprintf("concat-%dx%d", n, bits),
		N:    n,
		Eval: func(xs []uint64) uint64 {
			var y uint64
			for i, x := range xs {
				y |= (x & mask) << (uint(i) * uint(bits))
			}
			return y
		},
		Defaults: make([]uint64, n),
	}, nil
}

// Max is the sealed-bid-auction function max(x1,…,xn), used by the
// examples.
func Max(n int) (Function, error) {
	if n < 2 {
		return Function{}, fmt.Errorf("multiparty: max needs n ≥ 2, got %d", n)
	}
	return Function{
		Name: fmt.Sprintf("max-%d", n),
		N:    n,
		Eval: func(xs []uint64) uint64 {
			var best uint64
			for _, x := range xs {
				if x > best {
					best = x
				}
			}
			return best
		},
		Defaults: make([]uint64, n),
	}, nil
}

// Sum is Σ x_i mod 2^60 — a simple symmetric test function.
func Sum(n int) (Function, error) {
	if n < 2 {
		return Function{}, fmt.Errorf("multiparty: sum needs n ≥ 2, got %d", n)
	}
	return Function{
		Name: fmt.Sprintf("sum-%d", n),
		N:    n,
		Eval: func(xs []uint64) uint64 {
			var s uint64
			for _, x := range xs {
				s += x
			}
			return s & (1<<60 - 1)
		},
		Defaults: make([]uint64, n),
	}, nil
}
