package multiparty

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
)

const testBits = 8

func testFn(t *testing.T, n int) Function {
	t.Helper()
	fn, err := Concat(n, testBits)
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

func sampler(n int) core.InputSampler {
	return func(r *rand.Rand) []sim.Value {
		in := make([]sim.Value, n)
		for i := range in {
			in[i] = uint64(r.Intn(1 << testBits))
		}
		return in
	}
}

func TestConcatFunction(t *testing.T) {
	fn, err := Concat(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := fn.Eval([]uint64{1, 2, 3}); got != 1|2<<4|3<<8 {
		t.Errorf("concat = %d", got)
	}
	if _, err := Concat(1, 4); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Concat(8, 10); err == nil {
		t.Error("overflowing concat accepted")
	}
}

func TestMaxAndSumFunctions(t *testing.T) {
	fn, err := Max(3)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Eval([]uint64{4, 9, 2}) != 9 {
		t.Error("max")
	}
	if _, err := Max(1); err == nil {
		t.Error("Max(1) accepted")
	}
	sm, err := Sum(3)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Eval([]uint64{1, 2, 3}) != 6 {
		t.Error("sum")
	}
	if _, err := Sum(0); err == nil {
		t.Error("Sum(0) accepted")
	}
}

func TestOptNHonestRun(t *testing.T) {
	for _, n := range []int{3, 5} {
		p := NewOptN(testFn(t, n))
		inputs := make([]sim.Value, n)
		for i := range inputs {
			inputs[i] = uint64(i + 1)
		}
		for seed := int64(0); seed < 5; seed++ {
			tr, err := sim.Run(p, inputs, sim.Passive{}, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !tr.AllHonestDelivered() {
				t.Fatalf("n=%d seed=%d: honest run failed: %+v", n, seed, tr.HonestOutputs)
			}
		}
	}
}

func TestLemma11TUtilities(t *testing.T) {
	// Lock-abort with t corruptions earns exactly (tγ10+(n−t)γ11)/n.
	g := core.StandardPayoff()
	n := 5
	p := NewOptN(testFn(t, n))
	for tcorrupt := 1; tcorrupt < n; tcorrupt++ {
		for _, set := range adversary.TSubsets(n, tcorrupt) {
			rep, err := core.EstimateUtility(p, adversary.NewLockAbort(set...), g, sampler(n), 600, int64(10+tcorrupt))
			if err != nil {
				t.Fatal(err)
			}
			bound := core.MultiPartyTBound(g, n, tcorrupt)
			if !rep.Utility.MatchesWithin(bound, 0.05) {
				t.Errorf("n=%d t=%d set=%v: utility %v, want ≈ %v (events %v)",
					n, tcorrupt, set, rep.Utility, bound, rep.EventFreq)
			}
		}
	}
}

func TestLemma11SupUpperBound(t *testing.T) {
	// No strategy in the space exceeds the t = n−1 bound.
	g := core.StandardPayoff()
	n := 4
	p := NewOptN(testFn(t, n))
	sup, err := core.SupUtility(p, adversary.MultiPartySpace(n, p.NumRounds()), g, sampler(n), 250, 20)
	if err != nil {
		t.Fatal(err)
	}
	bound := core.MultiPartyOptimalBound(g, n)
	if !sup.BestReport.Utility.LeqWithin(bound, 0.05) {
		t.Errorf("sup utility %v (via %q) exceeds Lemma 11 bound %v",
			sup.BestReport.Utility, sup.Best, bound)
	}
}

func TestLemma13MixedAdversary(t *testing.T) {
	g := core.StandardPayoff()
	n := 5
	p := NewOptN(testFn(t, n))
	rep, err := core.EstimateUtility(p, adversary.NewAllButMixer(n), g, sampler(n), 900, 30)
	if err != nil {
		t.Fatal(err)
	}
	bound := core.MultiPartyOptimalBound(g, n)
	if !rep.Utility.MatchesWithin(bound, 0.05) {
		t.Errorf("allbut-mixer utility %v, want ≈ %v (events %v)", rep.Utility, bound, rep.EventFreq)
	}
}

// perTBest measures the best t-adversary utility for each t = 1..n−1.
func perTBest(t *testing.T, p sim.Protocol, g core.Payoff, n, runs int, seed int64, extra map[int][]core.NamedAdversary) core.PerTUtilities {
	t.Helper()
	out := make(core.PerTUtilities, 0, n-1)
	for tc := 1; tc < n; tc++ {
		space := adversary.MultiPartyTSpace(n, tc, p.NumRounds())
		space = append(space, extra[tc]...)
		sup, err := core.SupUtility(p, space, g, sampler(n), runs, seed+int64(tc))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, sup.BestReport.Utility.Mean)
	}
	return out
}

func TestLemma14BalancedSum(t *testing.T) {
	// ΠOpt-nSFE's per-t utility sum meets the balanced bound.
	g := core.StandardPayoff()
	n := 4
	p := NewOptN(testFn(t, n))
	per := perTBest(t, p, g, n, 250, 40, nil)
	bound := core.BalancedSumBound(g, n)
	if math.Abs(per.Sum()-bound) > 0.1 {
		t.Errorf("per-t sum = %v (%v), want ≈ %v", per.Sum(), per, bound)
	}
	if !core.IsUtilityBalanced(per, g, 0.1) {
		t.Error("ΠOpt-nSFE should be utility-balanced")
	}
}

func TestLemma17GMWProfile(t *testing.T) {
	// Π_GMW^{1/2}, n = 4: t < 2 earns γ11; t ≥ 2 earns γ10.
	g := core.StandardPayoff()
	n := 4
	p := NewGMWHalf(testFn(t, n))
	extra := make(map[int][]core.NamedAdversary)
	for tc := 1; tc < n; tc++ {
		for si, set := range adversary.TSubsets(n, tc) {
			extra[tc] = append(extra[tc], core.NamedAdversary{
				Name: fmt.Sprintf("gmw-setup-t%d-s%d", tc, si),
				Adv:  NewGMWSetupAttacker(set...),
			})
		}
	}
	per := perTBest(t, p, g, n, 250, 50, extra)
	wants := []float64{g.G11, g.G10, g.G10}
	for i, want := range wants {
		if math.Abs(per[i]-want) > 0.05 {
			t.Errorf("t=%d: utility %v, want %v", i+1, per[i], want)
		}
	}
	// The step profile exceeds the balanced bound: not utility-balanced.
	if core.IsUtilityBalanced(per, g, 0.05) {
		t.Errorf("even-n GMW must not be balanced: sum %v vs bound %v",
			per.Sum(), core.BalancedSumBound(g, n))
	}
	if per.Sum() < core.GMWEvenNSumLowerBound(g, n)-0.1 {
		t.Errorf("sum %v below Lemma 17 bound %v", per.Sum(), core.GMWEvenNSumLowerBound(g, n))
	}
}

func TestGMWHonestMajorityRobust(t *testing.T) {
	// Below n/2 corruptions everything delivers even under attack.
	n := 5
	p := NewGMWHalf(testFn(t, n))
	inputs := make([]sim.Value, n)
	for i := range inputs {
		inputs[i] = uint64(i)
	}
	for _, adv := range []sim.Adversary{
		adversary.NewLockAbort(1, 2),
		adversary.NewSetupAbort(1, 2),
		adversary.NewAbortAt(1, 1, 2),
	} {
		tr, err := sim.Run(p, inputs, adv, 60)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.AllHonestDelivered() {
			t.Errorf("honest majority failed to deliver under %T: %+v", adv, tr.HonestOutputs)
		}
	}
}

func TestGMWDishonestMajorityBreaks(t *testing.T) {
	// With ⌈n/2⌉ corruptions, lock-abort earns γ10 every run.
	g := core.StandardPayoff()
	n := 4
	p := NewGMWHalf(testFn(t, n))
	rep, err := core.EstimateUtility(p, NewGMWSetupAttacker(1, 2), g, sampler(n), 300, 70)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventFreq[core.E10] < 0.99 {
		t.Errorf("E10 freq %v, want ~1 (events %v)", rep.EventFreq[core.E10], rep.EventFreq)
	}
}

func TestLemma18AttackerUtility(t *testing.T) {
	// u = 1/n·γ10 + (n−1)/n·(γ10+γ11)/2 for the single-corruption attack.
	g := core.StandardPayoff()
	n := 4
	p := NewLemma18(testFn(t, n))
	rep, err := core.EstimateUtility(p, NewLemma18Attacker(2), g, sampler(n), 900, 80)
	if err != nil {
		t.Fatal(err)
	}
	want := g.G10/float64(n) + float64(n-1)/float64(n)*(g.G10+g.G11)/2
	if !rep.Utility.MatchesWithin(want, 0.05) {
		t.Errorf("Lemma18 attacker utility %v, want ≈ %v (events %v)", rep.Utility, want, rep.EventFreq)
	}
}

func TestLemma18StillOptimallyFair(t *testing.T) {
	// The sup over the standard space (plus the special attacker) stays
	// at the optimal bound ((n−1)γ10+γ11)/n — the Lemma 18 protocol is
	// optimally fair even though one t=1 strategy beats ΠOpt-nSFE's t=1
	// profile.
	g := core.StandardPayoff()
	n := 4
	p := NewLemma18(testFn(t, n))
	space := append(adversary.MultiPartySpace(n, p.NumRounds()),
		core.NamedAdversary{Name: "lemma18-special", Adv: NewLemma18Attacker(1)})
	sup, err := core.SupUtility(p, space, g, sampler(n), 300, 90)
	if err != nil {
		t.Fatal(err)
	}
	bound := core.MultiPartyOptimalBound(g, n)
	if !sup.BestReport.Utility.LeqWithin(bound, 0.06) {
		t.Errorf("sup %v (via %q) exceeds optimal bound %v", sup.BestReport.Utility, sup.Best, bound)
	}
}

func TestLemma18NotBalanced(t *testing.T) {
	// With the special attacker included in the t=1 space, the per-t sum
	// exceeds the balanced bound.
	g := core.StandardPayoff()
	n := 4
	p := NewLemma18(testFn(t, n))
	extra := map[int][]core.NamedAdversary{
		1: {{Name: "lemma18-special", Adv: NewLemma18Attacker(1)}},
	}
	per := perTBest(t, p, g, n, 300, 100, extra)
	if core.IsUtilityBalanced(per, g, 0.05) {
		t.Errorf("Lemma18 protocol must not be balanced: per-t %v sum %v vs bound %v",
			per, per.Sum(), core.BalancedSumBound(g, n))
	}
}

func TestHybridOddNotOptimal(t *testing.T) {
	// Π0 with odd n runs GMW-1/2: corrupting ⌈n/2⌉ = 3 of 5 earns γ10,
	// strictly above ΠOpt-nSFE's ceiling — not optimally fair.
	g := core.StandardPayoff()
	n := 5
	p := NewHybrid(testFn(t, n))
	rep, err := core.EstimateUtility(p, adversary.NewLockAbort(1, 2, 3), g, sampler(n), 300, 110)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Utility.MatchesWithin(g.G10, 0.03) {
		t.Errorf("Π0 odd-n attack utility %v, want γ10 (events %v)", rep.Utility, rep.EventFreq)
	}
	if rep.Utility.Mean <= core.MultiPartyOptimalBound(g, n)+0.05 {
		t.Error("attack should exceed the optimal-fairness bound")
	}
}

func TestHybridOddIsBalanced(t *testing.T) {
	// For odd n the GMW step profile sums exactly to the balanced bound.
	g := core.StandardPayoff()
	n := 5
	p := NewHybrid(testFn(t, n))
	per := perTBest(t, p, g, n, 250, 120, nil)
	bound := core.BalancedSumBound(g, n)
	if math.Abs(per.Sum()-bound) > 0.12 {
		t.Errorf("odd-n Π0 per-t sum %v (%v), want ≈ %v", per.Sum(), per, bound)
	}
}

func TestHybridEvenDelegatesToOptN(t *testing.T) {
	n := 4
	p := NewHybrid(testFn(t, n))
	if got := p.Name(); got != "nSFE-hybrid0(nSFE-opt-concat-4x8)" {
		t.Errorf("Name = %q", got)
	}
	if !p.SetupAbortable(1) {
		t.Error("OptN inner protocol should be abortable")
	}
	podd := NewHybrid(testFn(t, 5))
	if podd.SetupAbortable(1) {
		t.Error("odd-n hybrid should be robust below threshold")
	}
	if !podd.SetupAbortable(3) {
		t.Error("odd-n hybrid abortable at threshold")
	}
}

func TestSetupAbortOptNEndsInBot(t *testing.T) {
	// "If Π_GMW aborts then ΠOpt-nSFE also aborts": E00.
	n := 3
	p := NewOptN(testFn(t, n))
	tr, err := sim.Run(p, []sim.Value{uint64(1), uint64(2), uint64(3)}, adversary.NewSetupAbort(1), 130)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.SetupAborted {
		t.Fatal("setup not aborted")
	}
	if oc := core.Classify(tr); oc.Event != core.E00 {
		t.Errorf("event %v, want E00", oc.Event)
	}
}

func TestForgedBroadcastRejected(t *testing.T) {
	// A corrupted non-holder broadcasting a forged output is ignored
	// (signature check), so honest parties still adopt only the real one.
	n := 3
	p := NewOptN(testFn(t, n))
	adv := &forger{}
	rep, err := core.EstimateUtility(p, adv, core.StandardPayoff(), sampler(n), 200, 140)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorrectnessViolations > 0 {
		t.Errorf("forged broadcast accepted in %v of runs", rep.CorrectnessViolations)
	}
}

// forger corrupts p1 and broadcasts a bogus signed output every round.
type forger struct {
	adversary.Static
}

func (f *forger) Reset(ctx *sim.AdvContext) {
	f.Static.Targets = []sim.PartyID{1}
	f.Static.Reset(ctx)
}

func (f *forger) Act(round int, inboxes map[sim.PartyID][]sim.Message, rushed []sim.Message) []sim.Message {
	out := f.Static.Act(round, inboxes, rushed)
	return append(out, sim.Message{From: 1, To: sim.Broadcast,
		Payload: outMsg{HasOutput: true, Y: 424242, Sigma: []byte("forged")}})
}
