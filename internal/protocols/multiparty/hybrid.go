package multiparty

import (
	"math/rand"

	"repro/internal/sim"
)

// Hybrid is the protocol Π0 of Appendix B.1: it runs Π_GMW^{1/2} when the
// number of parties is odd and ΠOpt-nSFE when it is even. For odd n the
// GMW per-t utility sum happens to meet the balanced bound exactly, so Π0
// is utility-balanced for every n — but it is NOT optimally ~γ-fair,
// because for odd n an adversary corrupting ⌈n/2⌉ parties earns γ10,
// exceeding ΠOpt-nSFE's ceiling ((n−1)γ10 + γ11)/n. Π0 separates the two
// optimality notions in one direction; Lemma18 separates the other.
type Hybrid struct {
	inner sim.Protocol
}

var (
	_ sim.Protocol         = Hybrid{}
	_ sim.SetupAbortPolicy = Hybrid{}
)

// NewHybrid builds Π0 for fn.
func NewHybrid(fn Function) Hybrid {
	if fn.N%2 == 1 {
		return Hybrid{inner: NewGMWHalf(fn)}
	}
	return Hybrid{inner: NewOptN(fn)}
}

// Name implements sim.Protocol.
func (p Hybrid) Name() string { return "nSFE-hybrid0(" + p.inner.Name() + ")" }

// NumParties implements sim.Protocol.
func (p Hybrid) NumParties() int { return p.inner.NumParties() }

// NumRounds implements sim.Protocol.
func (p Hybrid) NumRounds() int { return p.inner.NumRounds() }

// Func implements sim.Protocol.
func (p Hybrid) Func(inputs []sim.Value) sim.Value { return p.inner.Func(inputs) }

// DefaultInput implements sim.Protocol.
func (p Hybrid) DefaultInput(id sim.PartyID) sim.Value { return p.inner.DefaultInput(id) }

// Setup implements sim.Protocol.
func (p Hybrid) Setup(inputs []sim.Value, rng *rand.Rand) ([]sim.Value, error) {
	return p.inner.Setup(inputs, rng)
}

// NewParty implements sim.Protocol.
func (p Hybrid) NewParty(id sim.PartyID, input, out sim.Value, aborted bool, rng *rand.Rand) (sim.Party, error) {
	return p.inner.NewParty(id, input, out, aborted, rng)
}

// SetupAbortable implements sim.SetupAbortPolicy, delegating to the
// inner protocol's policy when it has one.
func (p Hybrid) SetupAbortable(corrupted int) bool {
	if policy, ok := p.inner.(sim.SetupAbortPolicy); ok {
		return policy.SetupAbortable(corrupted)
	}
	return true
}
